package distknn_test

import (
	"strings"
	"sync"
	"testing"

	"distknn"
	"distknn/internal/points"
	"distknn/internal/testutil"
	"distknn/internal/xrand"
)

// remoteShards builds the deterministic per-node workload used by the
// remote-serving tests: node id holds perNode uniform scalars drawn from
// stream id of the seed, labels cycling 0..3 by global index, and the ID
// block [id·perNode+1, (id+1)·perNode].
func remoteShards(seed uint64, perNode int) distknn.ShardProvider[distknn.Scalar] {
	return func(id, k int) (distknn.Shard[distknn.Scalar], error) {
		rng := xrand.NewStream(seed, uint64(id))
		values := make([]distknn.Scalar, perNode)
		labels := make([]float64, perNode)
		for j := range values {
			values[j] = distknn.Scalar(rng.Uint64N(points.PaperDomain))
			labels[j] = float64((id*perNode + j) % 4)
		}
		return distknn.Shard[distknn.Scalar]{
			Points:  values,
			Labels:  labels,
			FirstID: uint64(id)*uint64(perNode) + 1,
		}, nil
	}
}

// mergedData reassembles the global dataset exactly as the shards hold it
// (same order, hence same IDs after NewScalarCluster assigns 1..n).
func mergedData(t *testing.T, seed uint64, k, perNode int) ([]uint64, []float64) {
	t.Helper()
	pts, labels := testutil.Merged(t, remoteShards(seed, perNode), k)
	values := make([]uint64, len(pts))
	for i, p := range pts {
		values[i] = uint64(p)
	}
	return values, labels
}

func startRemote(t *testing.T, k int, seed uint64, perNode int, opts distknn.NodeOptions) (*distknn.LocalServer, *distknn.RemoteCluster[distknn.Scalar]) {
	t.Helper()
	return testutil.StartCluster(t, distknn.ScalarPoints(), k, seed, remoteShards(seed, perNode), opts, distknn.FrontendOptions{})
}

// TestRemoteClusterMatchesInProcess is the headline acceptance test: a
// resident TCP cluster answers a long stream of sequential queries over one
// mesh, and every answer is bit-identical to the in-process Cluster serving
// the same global dataset.
func TestRemoteClusterMatchesInProcess(t *testing.T) {
	const (
		k       = 4
		perNode = 250
		seed    = 42
		queries = 110
		l       = 15
	)
	_, rc := startRemote(t, k, seed, perNode, distknn.NodeOptions{})

	values, labels := mergedData(t, seed, k, perNode)
	local, err := distknn.NewScalarCluster(values, labels, distknn.Options{Machines: k, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	queryAt := func(i int) distknn.Scalar {
		return distknn.Scalar(xrand.NewStream(seed, 1<<40+uint64(i)).Uint64N(points.PaperDomain))
	}
	for i := 0; i < queries; i++ {
		q := queryAt(i)
		remote, rstats, err := rc.KNN(q, l)
		if err != nil {
			t.Fatalf("remote query %d: %v", i, err)
		}
		want, lstats, err := local.KNN(q, l)
		if err != nil {
			t.Fatalf("local query %d: %v", i, err)
		}
		if len(remote) != len(want) {
			t.Fatalf("query %d: %d neighbors remote, %d local", i, len(remote), len(want))
		}
		for j := range want {
			if remote[j] != want[j] {
				t.Fatalf("query %d neighbor %d: remote %+v != local %+v", i, j, remote[j], want[j])
			}
		}
		if rstats.Boundary != lstats.Boundary {
			t.Fatalf("query %d: boundary remote %v != local %v", i, rstats.Boundary, lstats.Boundary)
		}
		if rstats.Rounds <= 0 || rstats.Messages <= 0 {
			t.Fatalf("query %d: implausible remote stats %+v", i, rstats)
		}
	}

	// Classification and regression agree too (labels are small integers,
	// so the regression mean is exact in float64 and summation order
	// cannot matter).
	for i := 0; i < 20; i++ {
		q := queryAt(1000 + i)
		rl, _, err := rc.Classify(q, l)
		if err != nil {
			t.Fatal(err)
		}
		ll, _, err := local.Classify(q, l)
		if err != nil {
			t.Fatal(err)
		}
		if rl != ll {
			t.Fatalf("classify %d: remote %g != local %g", i, rl, ll)
		}
		rm, _, err := rc.Regress(q, l)
		if err != nil {
			t.Fatal(err)
		}
		lm, _, err := local.Regress(q, l)
		if err != nil {
			t.Fatal(err)
		}
		if rm != lm {
			t.Fatalf("regress %d: remote %g != local %g", i, rm, lm)
		}
	}
}

// TestRemoteClusterDeterministicPerSeed re-serves the same seed and query
// stream on a fresh deployment and demands a bit-identical replay — results
// and per-query protocol costs.
func TestRemoteClusterDeterministicPerSeed(t *testing.T) {
	const (
		k       = 3
		perNode = 200
		seed    = 77
		queries = 25
		l       = 8
	)
	type obs struct {
		boundary distknn.Key
		rounds   int
		messages int64
		bytes    int64
	}
	run := func() []obs {
		_, rc := startRemote(t, k, seed, perNode, distknn.NodeOptions{})
		out := make([]obs, queries)
		for i := range out {
			q := distknn.Scalar(xrand.NewStream(seed, 1<<40+uint64(i)).Uint64N(points.PaperDomain))
			_, stats, err := rc.KNN(q, l)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = obs{stats.Boundary, stats.Rounds, stats.Messages, stats.Bytes}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d: run 1 %+v != run 2 %+v", i, a[i], b[i])
		}
	}
}

func TestRemoteClusterConcurrentClients(t *testing.T) {
	const (
		k       = 3
		perNode = 150
		seed    = 5
		l       = 6
	)
	srv, _ := startRemote(t, k, seed, perNode, distknn.NodeOptions{})
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rc, err := distknn.DialCluster(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer rc.Close()
			for i := 0; i < 10; i++ {
				q := distknn.Scalar(xrand.NewStream(seed, uint64(w)<<32+uint64(i)).Uint64N(points.PaperDomain))
				if _, _, err := rc.KNN(q, l); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestRemoteClusterValidation(t *testing.T) {
	const perNode = 50
	_, rc := startRemote(t, 2, 11, perNode, distknn.NodeOptions{})
	if _, _, err := rc.KNN(distknn.Scalar(1), 0); err == nil {
		t.Error("l=0 should fail")
	}
	if _, _, err := rc.KNN(distknn.Scalar(1), 2*perNode+1); err == nil {
		t.Error("l beyond the global point count should fail")
	} else if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("unexpected error: %v", err)
	}
	if _, _, err := rc.KNN(distknn.Scalar(1), 2*perNode); err != nil {
		t.Errorf("l at the global point count should work: %v", err)
	}
}

// TestTCPServeSmoke is the CI smoke test for the socket serving path: tiny
// cluster, a handful of queries, alg2 against the simple baseline oracle.
func TestTCPServeSmoke(t *testing.T) {
	const (
		k       = 2
		perNode = 60
		seed    = 3
		l       = 5
	)
	_, rc := startRemote(t, k, seed, perNode, distknn.NodeOptions{})
	values, labels := mergedData(t, seed, k, perNode)
	set, err := points.NewSet(values, labels, func(a, b uint64) uint64 {
		if a > b {
			return a - b
		}
		return b - a
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		q := xrand.NewStream(seed, 900+uint64(i)).Uint64N(points.PaperDomain)
		got, _, err := rc.KNN(distknn.Scalar(q), l)
		if err != nil {
			t.Fatal(err)
		}
		want := set.BruteKNN(q, l)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d neighbors, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j].Key != want[j].Key {
				t.Fatalf("query %d neighbor %d: %v != %v", i, j, got[j].Key, want[j].Key)
			}
		}
	}
}
