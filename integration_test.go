package distknn_test

// Integration tests across the whole stack: every algorithm × every elector
// × both runtimes (simulator and TCP) on the same instance must produce the
// same exact answer, and the algorithms' cost profiles must respect the
// paper's ordering at scale. These tests exercise the composition paths the
// per-package suites cannot.

import (
	"sync"
	"testing"

	"distknn"
	"distknn/internal/core"
	"distknn/internal/election"
	"distknn/internal/keys"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/transport/tcp"
	"distknn/internal/xrand"
)

// shardFor regenerates machine id's dataset from the shared seed, the
// deployment pattern used by the TCP runtime and cmd/knnnode.
func shardFor(seed uint64, id, n int) *points.Set[points.Scalar] {
	rng := xrand.NewStream(seed, uint64(id))
	s := points.GenUniformScalars(rng, n, points.PaperDomain)
	for j := range s.IDs {
		s.IDs[j] = uint64(id)*uint64(n) + uint64(j) + 1
	}
	return s
}

func oracleBoundary(seed uint64, k, n int, q points.Scalar, l int) keys.Key {
	var parts []*points.Set[points.Scalar]
	for i := 0; i < k; i++ {
		parts = append(parts, shardFor(seed, i, n))
	}
	return points.Merge(parts).BruteKNN(q, l)[l-1].Key
}

// TestFullMatrixSimulator runs every algorithm × elector combination inside
// the simulator and checks exactness and machine agreement.
func TestFullMatrixSimulator(t *testing.T) {
	const (
		seed = uint64(2024)
		k    = 6
		n    = 300
		l    = 21
	)
	q := points.Scalar(1 << 30)
	want := oracleBoundary(seed, k, n, q, l)

	algos := map[string]func(m kmachine.Env, cfg core.Config, local []points.Item) (core.Result, error){
		"alg2":        core.KNN,
		"direct":      core.DirectKNN,
		"simple":      core.SimpleKNN,
		"saukas-song": core.SaukasSongKNN,
		"binsearch":   core.BinarySearchKNN,
	}
	electors := map[string]func(m kmachine.Env) (int, error){
		"minguid": election.MinGUID,
		"sublinear": func(m kmachine.Env) (int, error) {
			return election.Sublinear(m, election.SublinearOptions{})
		},
	}
	for aname, algo := range algos {
		for ename, elect := range electors {
			t.Run(aname+"/"+ename, func(t *testing.T) {
				var mu sync.Mutex
				bounds := make([]keys.Key, k)
				prog := func(m kmachine.Env) error {
					shard := shardFor(seed, m.ID(), n)
					leader, err := elect(m)
					if err != nil {
						return err
					}
					res, err := algo(m, core.Config{Leader: leader, L: l}, shard.TopLItems(q, l))
					if err != nil {
						return err
					}
					mu.Lock()
					bounds[m.ID()] = res.Boundary
					mu.Unlock()
					return nil
				}
				met, err := kmachine.Run(kmachine.Config{K: k, Seed: seed}, prog)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < k; i++ {
					if bounds[i] != want {
						t.Fatalf("machine %d boundary %v, want %v", i, bounds[i], want)
					}
				}
				if met.Dangling != 0 {
					t.Errorf("%d dangling messages", met.Dangling)
				}
			})
		}
	}
}

// TestFullMatrixTCP runs the same matrix over real loopback sockets.
func TestFullMatrixTCP(t *testing.T) {
	const (
		seed = uint64(2025)
		k    = 4
		n    = 200
		l    = 9
	)
	q := points.Scalar(3 << 29)
	want := oracleBoundary(seed, k, n, q, l)

	algos := map[string]func(m kmachine.Env, cfg core.Config, local []points.Item) (core.Result, error){
		"alg2":   core.KNN,
		"direct": core.DirectKNN,
		"simple": core.SimpleKNN,
	}
	for aname, algo := range algos {
		t.Run(aname, func(t *testing.T) {
			var mu sync.Mutex
			bounds := make([]keys.Key, k)
			prog := func(m kmachine.Env) error {
				shard := shardFor(seed, m.ID(), n)
				leader, err := election.MinGUID(m)
				if err != nil {
					return err
				}
				res, err := algo(m, core.Config{Leader: leader, L: l}, shard.TopLItems(q, l))
				if err != nil {
					return err
				}
				mu.Lock()
				bounds[m.ID()] = res.Boundary
				mu.Unlock()
				return nil
			}
			_, errs, err := tcp.RunLocal(k, seed, prog)
			if err != nil {
				t.Fatal(err)
			}
			for i, e := range errs {
				if e != nil {
					t.Fatalf("node %d: %v", i, e)
				}
			}
			for i := 0; i < k; i++ {
				if bounds[i] != want {
					t.Fatalf("node %d boundary %v, want %v", i, bounds[i], want)
				}
			}
		})
	}
}

// TestCostOrderingAtScale pins the paper's qualitative cost ordering: at a
// large ℓ under the bandwidth-limited model, Algorithm 2 must beat the
// simple method on rounds by at least 5×, and the simple method must beat
// everything on message count (it sends k−1 big messages).
func TestCostOrderingAtScale(t *testing.T) {
	const (
		seed = uint64(11)
		k    = 8
		n    = 1 << 13
		l    = 2048
	)
	q := points.Scalar(1 << 31)
	run := func(algo func(m kmachine.Env, cfg core.Config, local []points.Item) (core.Result, error)) *kmachine.Metrics {
		prog := func(m kmachine.Env) error {
			shard := shardFor(seed, m.ID(), n)
			_, err := algo(m, core.Config{Leader: 0, L: l}, shard.TopLItems(q, l))
			return err
		}
		met, err := kmachine.Run(kmachine.Config{K: k, Seed: seed}, prog)
		if err != nil {
			t.Fatal(err)
		}
		return met
	}
	m2 := run(core.KNN)
	ms := run(core.SimpleKNN)
	if m2.Rounds*5 > ms.Rounds {
		t.Errorf("alg2 %d rounds vs simple %d rounds: expected ≥5x separation at l=%d",
			m2.Rounds, ms.Rounds, l)
	}
	if ms.Messages >= m2.Messages {
		t.Errorf("simple sent %d messages vs alg2 %d: simple should send fewer, bigger messages",
			ms.Messages, m2.Messages)
	}
	if ms.Bytes <= m2.Bytes {
		t.Errorf("simple moved %dB vs alg2 %dB: simple should move far more data", ms.Bytes, m2.Bytes)
	}
}

// TestFacadeAgainstInternalPipeline cross-checks the public API against a
// hand-assembled internal pipeline on the same data.
func TestFacadeAgainstInternalPipeline(t *testing.T) {
	rng := xrand.New(404)
	values := make([]uint64, 500)
	for i := range values {
		values[i] = rng.Uint64N(points.PaperDomain)
	}
	c, err := distknn.NewScalarCluster(values, nil, distknn.Options{Machines: 5, Seed: 404})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q := distknn.Scalar(7777777)
	items, stats, err := c.KNN(q, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Internal oracle over the same values.
	set, _ := points.NewSet(toScalars(values), nil, points.ScalarMetric, 1)
	want := set.BruteKNN(q, 13)
	for i := range items {
		if items[i].Key != want[i].Key {
			t.Fatalf("rank %d: %v != %v", i, items[i].Key, want[i].Key)
		}
	}
	if stats.Boundary != want[12].Key {
		t.Errorf("boundary mismatch")
	}
}

func toScalars(values []uint64) []points.Scalar {
	out := make([]points.Scalar, len(values))
	for i, v := range values {
		out[i] = points.Scalar(v)
	}
	return out
}
