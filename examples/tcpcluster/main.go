// TCP cluster: the same protocols that run on the in-process simulator,
// executed over real loopback TCP sockets — one goroutine per machine, a
// full connection mesh, BSP-synchronized rounds. Each node generates its own
// data shard from the shared seed (as in the paper's experiment, where every
// process draws its points independently) and the elected leader prints the
// answer.
package main

import (
	"fmt"
	"log"

	"distknn/internal/core"
	"distknn/internal/election"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/transport/tcp"
	"distknn/internal/xrand"
)

func main() {
	const (
		k       = 6
		perNode = 100_000
		l       = 12
		seed    = 2024
	)
	query := points.Scalar(xrand.NewStream(seed, 1<<40).Uint64N(points.PaperDomain))
	fmt.Printf("TCP cluster: %d nodes x %d points, query=%d, l=%d\n", k, perNode, uint64(query), l)

	prog := func(m kmachine.Env) error {
		// Generate this node's shard — identity comes from the
		// coordinator's assignment, exactly like a real deployment.
		rng := xrand.NewStream(seed, uint64(m.ID()))
		shard := points.GenUniformScalars(rng, perNode, points.PaperDomain)
		for j := range shard.IDs {
			shard.IDs[j] = uint64(m.ID())*uint64(perNode) + uint64(j) + 1
		}

		leader, err := election.Sublinear(m, election.SublinearOptions{BandwidthBytes: -1})
		if err != nil {
			return err
		}
		res, err := core.KNN(m, core.Config{Leader: leader, L: l}, shard.TopLItems(query, l))
		if err != nil {
			return err
		}
		if m.ID() == leader {
			fmt.Printf("leader (machine %d): %d-th neighbor at distance %d, prune kept %d candidates\n",
				leader, l, res.Boundary.Dist, res.Survivors)
		}
		if len(res.Winners) > 0 {
			fmt.Printf("machine %d holds %d of the %d winners\n", m.ID(), len(res.Winners), l)
		}
		return nil
	}

	metrics, errs, err := tcp.RunLocal(k, seed, prog)
	if err != nil {
		log.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			log.Fatalf("node %d: %v", i, e)
		}
	}
	var msgs int64
	rounds := 0
	for _, m := range metrics {
		msgs += m.Messages
		if m.Rounds > rounds {
			rounds = m.Rounds
		}
	}
	fmt.Printf("finished over real sockets: %d rounds, %d protocol messages\n", rounds, msgs)
}
