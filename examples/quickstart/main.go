// Quickstart: distribute a dataset over simulated machines and ask for the
// ten nearest neighbors of a query point.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"distknn"
)

func main() {
	// One million integer points with a toy label (their magnitude bucket).
	rng := rand.New(rand.NewPCG(1, 2))
	values := make([]uint64, 1_000_000)
	labels := make([]float64, len(values))
	for i := range values {
		values[i] = rng.Uint64N(1 << 32)
		labels[i] = float64(values[i] >> 30) // 0..3
	}

	// Distribute over 16 simulated machines.
	cluster, err := distknn.NewScalarCluster(values, labels, distknn.Options{
		Machines: 16,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	query := distknn.Scalar(1 << 31)
	neighbors, stats, err := cluster.KNN(query, 10)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("10 nearest neighbors of %d (found in %d rounds, %d messages, %d bytes):\n",
		uint64(query), stats.Rounds, stats.Messages, stats.Bytes)
	for i, nb := range neighbors {
		fmt.Printf("  #%-2d distance=%-8d id=%-8d label=%g\n", i+1, nb.Key.Dist, nb.Key.ID, nb.Label)
	}

	// The same neighbors drive classification (majority label) and
	// regression (mean label) without re-running the search pipeline.
	label, _, err := cluster.Classify(query, 10)
	if err != nil {
		log.Fatal(err)
	}
	mean, _, err := cluster.Regress(query, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("majority label: %g   mean label: %.2f\n", label, mean)
}
