// Classification: the machine-learning workload from the paper's
// introduction. Points are drawn from labeled Gaussian clusters; a query is
// classified by the majority label of its ℓ nearest neighbors, computed
// distributedly in O(log ℓ) rounds. The example measures accuracy against
// the generating clusters.
package main

import (
	"fmt"
	"log"

	"distknn"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

func main() {
	const (
		nPoints  = 60_000
		nQueries = 200
		clusters = 5
		dim      = 3
		sigma    = 0.04
		machines = 12
		l        = 25
	)
	rng := xrand.New(7)
	train, centers := points.GenGaussianClusters(rng, nPoints, dim, clusters, sigma)

	cluster, err := distknn.NewVectorCluster(train.Pts, train.Labels, distknn.Options{
		Machines: machines,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	correct := 0
	var rounds, msgs int64
	for i := 0; i < nQueries; i++ {
		// Draw a test point from a known cluster.
		ci := rng.IntN(clusters)
		q := make(distknn.Vector, dim)
		for j := range q {
			q[j] = centers[ci][j] + rng.NormFloat64()*sigma
		}
		label, stats, err := cluster.Classify(q, l)
		if err != nil {
			log.Fatal(err)
		}
		if int(label) == ci {
			correct++
		}
		rounds += int64(stats.Rounds)
		msgs += stats.Messages
	}

	fmt.Printf("%d-NN classification of %d queries over %d machines:\n", l, nQueries, machines)
	fmt.Printf("  accuracy: %.1f%% (%d/%d)\n", 100*float64(correct)/nQueries, correct, nQueries)
	fmt.Printf("  avg cost: %.1f rounds, %.1f messages per query\n",
		float64(rounds)/nQueries, float64(msgs)/nQueries)
}
