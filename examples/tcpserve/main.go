// TCP serving cluster: the persistent counterpart of examples/tcpcluster.
// A frontend and k resident nodes mesh up over loopback sockets, elect a
// leader once, and then answer a stream of queries — one BSP epoch per
// query on the standing mesh — through the same RemoteCluster client a
// remote process would use. Compare the per-query cost printed here with
// examples/tcpcluster, which pays rendezvous + mesh + election for its
// single query.
package main

import (
	"fmt"
	"log"

	"distknn"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

func main() {
	const (
		k       = 4
		perNode = 50_000
		l       = 10
		seed    = 2026
		queries = 500
	)

	// Each node builds its shard from the shared seed at join time —
	// exactly like a real deployment, where data lives with the node.
	srv, err := distknn.ServeLocal(k, seed, distknn.PaperShards(seed, perNode), distknn.NodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving cluster up: %d nodes x %d points, leader=machine %d\n",
		k, perNode, srv.Leader())

	rc, err := distknn.DialCluster(srv.Addr())
	if err != nil {
		srv.Close()
		log.Fatal(err)
	}

	var rounds, msgs int64
	for i := 0; i < queries; i++ {
		q := distknn.Scalar(xrand.NewStream(seed, 1<<40+uint64(i)).Uint64N(points.PaperDomain))
		_, stats, err := rc.KNN(q, l)
		if err != nil {
			log.Fatalf("query %d: %v", i, err)
		}
		rounds += int64(stats.Rounds)
		msgs += stats.Messages
	}
	// Labels are the values scaled to [0,1], so regression at the domain
	// midpoint should come out near 0.5.
	mean, _, err := rc.Regress(distknn.Scalar(1<<31), l)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d queries on one mesh: mean rounds=%.1f, mean messages=%.1f (election: 0 per query)\n",
		queries, float64(rounds)/float64(queries), float64(msgs)/float64(queries))
	fmt.Printf("bonus regression at the domain midpoint: mean label=%.4f\n", mean)

	rc.Close()
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("clean shutdown")
}
