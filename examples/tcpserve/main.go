// TCP serving cluster: the persistent counterpart of examples/tcpcluster,
// serving a vector workload. A frontend and k resident nodes — each
// holding a k-d-tree-indexed shard of d-dimensional points — mesh up over
// loopback sockets, elect a leader once, and then answer a stream of
// queries through the same RemoteCluster client a remote process would
// use. The stream is issued twice: one query per BSP epoch, then in
// KNNBatch batches that run as lockstep sub-programs of one epoch per
// batch, so the wall-clock delta printed at the end is pure amortized
// frame/syscall/round overhead. Compare examples/tcpcluster, which pays
// rendezvous + mesh + election for its single query.
package main

import (
	"fmt"
	"log"
	"time"

	"distknn"
	"distknn/internal/xrand"
)

func main() {
	const (
		k       = 4
		perNode = 20_000
		dim     = 8
		l       = 10
		seed    = 2026
		queries = 256
		batch   = 32
	)

	// Each node builds its shard from the shared seed at join time —
	// exactly like a real deployment, where data lives with the node.
	srv, err := distknn.ServeVectorLocal(k, seed, distknn.UniformVectorShards(seed, perNode, dim), distknn.NodeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving cluster up: %d nodes x %d %d-dim points (k-d-tree-indexed), leader=machine %d\n",
		k, perNode, dim, srv.Leader())

	rc, err := distknn.DialVectorCluster(srv.Addr())
	if err != nil {
		srv.Close()
		log.Fatal(err)
	}

	queryAt := func(i int) distknn.Vector {
		rng := xrand.NewStream(seed, 1<<40+uint64(i))
		v := make(distknn.Vector, dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		return v
	}

	// One query per epoch.
	var rounds int64
	start := time.Now()
	for i := 0; i < queries; i++ {
		_, stats, err := rc.KNN(queryAt(i), l)
		if err != nil {
			log.Fatalf("query %d: %v", i, err)
		}
		rounds += int64(stats.Rounds)
	}
	soloWall := time.Since(start)
	fmt.Printf("%d solo queries: %v (%.1f rounds/query, election: 0 per query)\n",
		queries, soloWall.Round(time.Millisecond), float64(rounds)/float64(queries))

	// The same stream in lockstep batches — bit-identical answers.
	rounds = 0
	start = time.Now()
	for i := 0; i < queries; i += batch {
		n := batch
		if i+n > queries {
			n = queries - i
		}
		qs := make([]distknn.Vector, n)
		for j := range qs {
			qs[j] = queryAt(i + j)
		}
		_, stats, err := rc.KNNBatch(qs, l)
		if err != nil {
			log.Fatalf("batch at %d: %v", i, err)
		}
		rounds += int64(stats.Rounds)
	}
	batchWall := time.Since(start)
	fmt.Printf("%d queries in batches of %d: %v (%.1f rounds/query, %.1fx faster)\n",
		queries, batch, batchWall.Round(time.Millisecond),
		float64(rounds)/float64(queries), soloWall.Seconds()/batchWall.Seconds())

	// Labels cycle 0..3 by global index, so classification has a target.
	label, _, err := rc.Classify(queryAt(0), l)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bonus classification of query 0: majority label=%g\n", label)

	rc.Close()
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("clean shutdown")
}
