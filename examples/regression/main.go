// Regression: ℓ-NN regression over distributed data. The training set is
// y = sin(2πx/D) + noise over scalar x; the distributed ℓ-NN pipeline
// estimates the function as the mean label of the ℓ nearest neighbors, and
// the example reports RMSE against the clean signal.
package main

import (
	"fmt"
	"log"
	"math"

	"distknn"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

func main() {
	const (
		nPoints  = 200_000
		nQueries = 100
		noise    = 0.05
		machines = 8
		l        = 50
	)
	rng := xrand.New(11)
	train := points.GenRegression1D(rng, nPoints, points.PaperDomain, noise)

	values := make([]uint64, train.Len())
	for i, p := range train.Pts {
		values[i] = uint64(p)
	}
	cluster, err := distknn.NewScalarCluster(values, train.Labels, distknn.Options{
		Machines: machines,
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	var se float64
	for i := 0; i < nQueries; i++ {
		x := rng.Uint64N(points.PaperDomain)
		truth := math.Sin(2 * math.Pi * float64(x) / float64(points.PaperDomain))
		estimate, _, err := cluster.Regress(distknn.Scalar(x), l)
		if err != nil {
			log.Fatal(err)
		}
		se += (estimate - truth) * (estimate - truth)
		if i < 5 {
			fmt.Printf("  x=%-12d sin=%+.4f  knn=%+.4f\n", x, truth, estimate)
		}
	}
	rmse := math.Sqrt(se / nQueries)
	fmt.Printf("%d-NN regression on %d queries: RMSE %.4f (noise level %.2f)\n",
		l, nQueries, rmse, noise)
	if rmse > 3*noise {
		log.Fatalf("regression quality unexpectedly poor")
	}
}
