// Selection: the paper's Algorithm 1 used directly as a distributed
// subroutine ("we believe that our algorithm can be used as a subroutine
// for many other problems" — Section 4). This example computes a running
// distributed median over k machines and compares the three selection
// protocols' costs on the same instance.
package main

import (
	"fmt"
	"log"
	"sync"

	"distknn/internal/dsel"
	"distknn/internal/keys"
	"distknn/internal/kmachine"
	"distknn/internal/xrand"
)

func main() {
	const (
		k          = 10
		perMachine = 50_000
	)
	// Each machine holds its own shard of measurements (e.g. sensor
	// readings); we want the exact global median without centralizing.
	locals := make([][]keys.Key, k)
	for i := 0; i < k; i++ {
		rng := xrand.NewStream(99, uint64(i))
		shard := make([]keys.Key, perMachine)
		for j := range shard {
			shard[j] = keys.Key{
				Dist: rng.Uint64N(1 << 40),
				ID:   uint64(i*perMachine+j) + 1,
			}
		}
		locals[i] = shard
	}
	rank := k * perMachine / 2

	type proto struct {
		name string
		run  func(m kmachine.Env, local []keys.Key) (dsel.Result, error)
	}
	protos := []proto{
		{"algorithm-1 (randomized)", func(m kmachine.Env, local []keys.Key) (dsel.Result, error) {
			return dsel.FindLSmallest(m, 0, local, rank, dsel.Options{})
		}},
		{"saukas-song (deterministic)", func(m kmachine.Env, local []keys.Key) (dsel.Result, error) {
			return dsel.SaukasSong(m, 0, local, rank)
		}},
		{"binary-search (domain)", func(m kmachine.Env, local []keys.Key) (dsel.Result, error) {
			return dsel.BinarySearch(m, 0, local, rank)
		}},
	}

	fmt.Printf("distributed median of %d values over %d machines (rank %d)\n\n",
		k*perMachine, k, rank)
	for _, p := range protos {
		var mu sync.Mutex
		var median keys.Key
		var iters int
		prog := func(m kmachine.Env) error {
			res, err := p.run(m, locals[m.ID()])
			if err != nil {
				return err
			}
			if m.ID() == 0 {
				mu.Lock()
				median = res.Boundary
				iters = res.Iterations
				mu.Unlock()
			}
			return nil
		}
		met, err := kmachine.Run(kmachine.Config{K: k, Seed: 5}, prog)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s median=%-14d rounds=%-5d messages=%-6d iterations=%d\n",
			p.name, median.Dist, met.Rounds, met.Messages, iters)
	}
}
