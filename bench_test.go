// Benchmarks regenerating the paper's evaluation artifacts (one Benchmark
// per bench.Experiments id). Each benchmark runs its experiment at a
// reduced but meaningful size and reports model-level costs (rounds,
// messages) as custom metrics alongside wall time; run cmd/knnbench for the
// full sweeps and tables.
//
//	go test -bench=. -benchmem
package distknn_test

import (
	"testing"

	"distknn"
	"distknn/internal/bench"
	"distknn/internal/core"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

// benchParams returns harness parameters sized for a benchmark iteration.
func benchParams() bench.Params {
	return bench.Params{Seed: 1, Reps: 1, PerMachine: 1 << 12}
}

// runExperiment drives a whole experiment once per benchmark iteration.
func runExperiment(b *testing.B, id string, p bench.Params) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates E1 (the paper's Figure 2) at one (k, l) cell
// per series to keep iterations fast.
func BenchmarkFigure2(b *testing.B) {
	p := benchParams()
	p.Ks = []int{8, 32}
	p.Ls = []int{256, 2048}
	runExperiment(b, "figure2", p)
}

// BenchmarkRoundsVsL regenerates E2.
func BenchmarkRoundsVsL(b *testing.B) {
	p := benchParams()
	p.Ls = []int{16, 256, 4096}
	runExperiment(b, "rounds", p)
}

// BenchmarkMessages regenerates E3.
func BenchmarkMessages(b *testing.B) {
	p := benchParams()
	p.Ls = []int{16, 256, 4096}
	runExperiment(b, "messages", p)
}

// BenchmarkAlg1Rounds regenerates E4.
func BenchmarkAlg1Rounds(b *testing.B) {
	p := benchParams()
	p.Quick = true
	runExperiment(b, "alg1", p)
}

// BenchmarkSampling regenerates E5.
func BenchmarkSampling(b *testing.B) {
	p := benchParams()
	p.Ls = []int{64, 512}
	runExperiment(b, "sampling", p)
}

// BenchmarkPivot regenerates E6.
func BenchmarkPivot(b *testing.B) {
	p := benchParams()
	p.Quick = true
	runExperiment(b, "pivot", p)
}

// BenchmarkBaselines regenerates E7.
func BenchmarkBaselines(b *testing.B) {
	p := benchParams()
	p.Ks = []int{8}
	p.Ls = []int{256}
	runExperiment(b, "baselines", p)
}

// BenchmarkWallClock regenerates E8.
func BenchmarkWallClock(b *testing.B) {
	p := benchParams()
	p.Quick = true
	runExperiment(b, "wallclock", p)
}

// BenchmarkConstants regenerates E9.
func BenchmarkConstants(b *testing.B) {
	p := benchParams()
	p.Quick = true
	runExperiment(b, "constants", p)
}

// BenchmarkQueryAlg2 measures one end-to-end Algorithm 2 query (k=16,
// l=256) and reports rounds/messages as custom metrics.
func BenchmarkQueryAlg2(b *testing.B) {
	benchmarkQuery(b, bench.Algo{Name: "alg2", Fn: core.KNN})
}

// BenchmarkQuerySimple measures the same query under the simple method —
// the head-to-head pair behind Figure 2.
func BenchmarkQuerySimple(b *testing.B) {
	benchmarkQuery(b, bench.Algo{Name: "simple", Fn: core.SimpleKNN})
}

func benchmarkQuery(b *testing.B, algo bench.Algo) {
	in := bench.NewInstance(1, 16, 1<<14)
	var rounds, msgs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := in.Query(1, i)
		_, met, _, err := in.Run(q, 256, 0, uint64(i), algo, core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		rounds += int64(met.Rounds)
		msgs += met.Messages
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/query")
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/query")
}

// BenchmarkFacadeKNN measures the public API end to end, including
// partitioning amortized over queries.
func BenchmarkFacadeKNN(b *testing.B) {
	rng := xrand.New(1)
	values := make([]uint64, 1<<16)
	for i := range values {
		values[i] = rng.Uint64N(points.PaperDomain)
	}
	c, err := distknn.NewScalarCluster(values, nil, distknn.Options{Machines: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.KNN(distknn.Scalar(rng.Uint64N(points.PaperDomain)), 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorRound measures the engine's per-round barrier overhead,
// the floor under every protocol measurement.
func BenchmarkSimulatorRound(b *testing.B) {
	const roundsPerRun = 256
	k := 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := kmachine.Run(kmachine.Config{K: k, Seed: uint64(i)}, func(m kmachine.Env) error {
			for r := 0; r < roundsPerRun; r++ {
				m.EndRound()
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*roundsPerRun*k), "ns/machine-round")
}
