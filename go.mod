module distknn

go 1.24
