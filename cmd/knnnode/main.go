// Command knnnode runs the distributed ℓ-NN pipeline over real TCP sockets.
// Every node generates its own shard of the paper's synthetic workload from
// the shared seed, so no data files need distributing.
//
// Without -serve it is a one-shot cluster: a coordinator process performs
// rendezvous, and k node processes (one per machine) mesh up, elect a
// leader, answer a single query with Algorithm 2, and tear down.
//
// With -serve the deployment is a resident serving cluster: the coordinator
// becomes a long-lived frontend, the nodes mesh up once, elect a leader
// once, and then answer a stream of queries — one BSP epoch per query —
// dispatched by the frontend to remote clients (knnquery -connect, or the
// distknn.DialCluster API).
//
// One-shot demo (three terminals):
//
//	knnnode -coordinator -addr 127.0.0.1:7100 -k 2 -seed 1
//	knnnode -join 127.0.0.1:7100 -points 100000 -l 10 -query 12345
//	knnnode -join 127.0.0.1:7100 -points 100000 -l 10 -query 12345
//
// Serving demo (three terminals plus any number of clients):
//
//	knnnode -serve -coordinator -addr 127.0.0.1:7100 -k 2 -seed 1
//	knnnode -serve -join 127.0.0.1:7100 -points 100000
//	knnnode -serve -join 127.0.0.1:7100 -points 100000
//	knnquery -connect 127.0.0.1:7100 -l 10
//
// Or everything in one process:
//
//	knnnode -local -k 8 -points 100000 -l 10 -query 12345
//	knnnode -serve -local -k 8 -points 100000 -l 10 -queries 100
package main

import (
	"flag"
	"fmt"
	"os"

	"distknn"
	"distknn/internal/core"
	"distknn/internal/election"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/transport/tcp"
	"distknn/internal/xrand"
)

func main() {
	var (
		coordinator = flag.Bool("coordinator", false, "run the rendezvous coordinator (with -serve: the resident frontend)")
		addr        = flag.String("addr", "127.0.0.1:7100", "coordinator listen address")
		join        = flag.String("join", "", "coordinator address to join as a node")
		local       = flag.Bool("local", false, "run coordinator and all k nodes in this process")
		serve       = flag.Bool("serve", false, "resident serving cluster instead of one-shot")
		k           = flag.Int("k", 4, "cluster size (coordinator/local mode)")
		seed        = flag.Uint64("seed", 1, "shared cluster seed")
		perNode     = flag.Int("points", 1<<16, "points generated per node")
		l           = flag.Int("l", 10, "number of nearest neighbors")
		query       = flag.Uint64("query", 0, "query point (0 = derived from seed; one-shot and -serve -local)")
		queries     = flag.Int("queries", 100, "queries the -serve -local demo issues before exiting")
		meshAddr    = flag.String("mesh", "127.0.0.1:0", "node mesh listen address")
	)
	flag.Parse()

	q := *query
	if q == 0 {
		q = xrand.NewStream(*seed, 1<<40).Uint64N(points.PaperDomain)
	}

	switch {
	case *serve && *coordinator:
		fe, err := distknn.NewFrontend(*addr, *k, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("serving frontend on %s waiting for %d nodes (seed=%d)\n", fe.Addr(), *k, *seed)
		if err := fe.Serve(); err != nil {
			fatalf("%v", err)
		}
	case *serve && *join != "":
		fmt.Printf("resident node joining %s (%d points/node)\n", *join, *perNode)
		if err := distknn.ServeScalarNode(*join, *meshAddr, distknn.PaperShards(*seed, *perNode), distknn.NodeOptions{}); err != nil {
			fatalf("%v", err)
		}
		fmt.Println("node shut down cleanly")
	case *serve && *local:
		serveLocalDemo(*k, *seed, *perNode, *l, *queries)
	case *coordinator:
		c, err := tcp.NewCoordinator(*addr, *k, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		defer c.Close()
		fmt.Printf("coordinator on %s waiting for %d nodes (seed=%d)\n", c.Addr(), *k, *seed)
		if err := c.Wait(); err != nil {
			fatalf("%v", err)
		}
		fmt.Println("all nodes configured; coordinator done")
	case *join != "":
		met, err := tcp.RunNode(*join, *meshAddr, nodeProgram(*seed, *perNode, *l, q, true))
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("node done: rounds=%d messages=%d bytes=%d\n", met.Rounds, met.Messages, met.Bytes)
	case *local:
		fmt.Printf("local cluster: k=%d, %d points/node, l=%d, query=%d\n", *k, *perNode, *l, q)
		metrics, errs, err := tcp.RunLocal(*k, *seed, nodeProgram(*seed, *perNode, *l, q, false))
		if err != nil {
			fatalf("%v", err)
		}
		for i, e := range errs {
			if e != nil {
				fatalf("node %d: %v", i, e)
			}
		}
		var msgs, bytes int64
		rounds := 0
		for _, m := range metrics {
			msgs += m.Messages
			bytes += m.Bytes
			if m.Rounds > rounds {
				rounds = m.Rounds
			}
		}
		fmt.Printf("cluster totals: rounds=%d messages=%d traffic=%dB\n", rounds, msgs, bytes)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// serveLocalDemo runs the whole serving deployment in one process —
// frontend, k resident nodes, and a client — answers `queries` queries over
// the standing mesh, and prints the last answer plus aggregate cost.
func serveLocalDemo(k int, seed uint64, perNode, l, queries int) {
	if queries < 1 {
		queries = 1
	}
	fmt.Printf("local serving cluster: k=%d, %d points/node, l=%d, %d queries\n", k, perNode, l, queries)
	srv, err := distknn.ServeLocal(k, seed, distknn.PaperShards(seed, perNode), distknn.NodeOptions{})
	if err != nil {
		fatalf("%v", err)
	}
	rc, err := distknn.DialCluster(srv.Addr())
	if err != nil {
		srv.Close()
		fatalf("%v", err)
	}
	var rounds, msgs int64
	var last *distknn.QueryStats
	for i := 0; i < queries; i++ {
		q := distknn.Scalar(xrand.NewStream(seed, 1<<40+uint64(i)).Uint64N(points.PaperDomain))
		_, stats, err := rc.KNN(q, l)
		if err != nil {
			fatalf("query %d: %v", i, err)
		}
		rounds += int64(stats.Rounds)
		msgs += stats.Messages
		last = stats
	}
	rc.Close()
	if err := srv.Close(); err != nil {
		fatalf("shutdown: %v", err)
	}
	fmt.Printf("answered %d queries on one mesh: leader=machine %d, mean rounds=%.1f, mean messages=%.1f\n",
		queries, last.Leader, float64(rounds)/float64(queries), float64(msgs)/float64(queries))
	fmt.Printf("last query: boundary-dist=%d (election ran once, in the setup epoch)\n", last.Boundary.Dist)
}

// nodeProgram builds the per-node behaviour: generate the local shard from
// the shared seed, elect a leader, run Algorithm 2, classify, and (on the
// leader) print the answer.
func nodeProgram(seed uint64, perNode, l int, q uint64, verbose bool) kmachine.Program {
	return func(m kmachine.Env) error {
		rng := xrand.NewStream(seed, uint64(m.ID()))
		set := points.GenUniformScalars(rng, perNode, points.PaperDomain)
		for j := range set.IDs {
			set.IDs[j] = uint64(m.ID())*uint64(perNode) + uint64(j) + 1
		}
		leader, err := election.MinGUID(m)
		if err != nil {
			return err
		}
		res, err := core.KNN(m, core.Config{Leader: leader, L: l}, set.TopLItems(points.Scalar(q), l))
		if err != nil {
			return err
		}
		label, err := core.Classify(m, leader, res.Winners)
		if err != nil {
			return err
		}
		if verbose || m.ID() == leader {
			fmt.Printf("machine %d: leader=%d boundary-dist=%d local-winners=%d label=%g\n",
				m.ID(), leader, res.Boundary.Dist, len(res.Winners), label)
		}
		return nil
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "knnnode: "+format+"\n", args...)
	os.Exit(1)
}
