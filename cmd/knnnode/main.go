// Command knnnode runs the distributed ℓ-NN pipeline over real TCP sockets.
// Every node generates its own shard of the synthetic workload from the
// shared seed, so no data files need distributing.
//
// Without -serve it is a one-shot cluster: a coordinator process performs
// rendezvous, and k node processes (one per machine) mesh up, elect a
// leader, answer a single query with Algorithm 2, and tear down.
//
// With -serve the deployment is a resident serving cluster: the coordinator
// becomes a long-lived frontend, the nodes mesh up once, elect a leader
// once, and then answer a stream of query batches — one BSP epoch per
// batch — dispatched by the frontend to remote clients (knnquery -connect,
// or the distknn.DialScalarCluster / DialVectorCluster API). With -dim > 0
// the nodes hold d-dimensional vector shards indexed by k-d trees instead
// of the paper's scalar workload. The frontend's epoch scheduler pipelines
// up to -window query epochs on the mesh concurrently, and with
// -server-batch it coalesces concurrently arriving single queries into
// lockstep batch epochs (flushed at 64 points or after -linger).
//
// Nodes spanning hosts listen on -mesh and may announce a different
// reachable address with -advertise (e.g. -mesh 0.0.0.0:7101 -advertise
// 10.0.0.5:7101); see docs/ARCHITECTURE.md for the port scheme.
//
// A serving cluster survives node churn: if a resident node dies, queries
// fail fast with a retryable "cluster degraded" error until a node takes
// the empty seat back — either a freshly started `knnnode -serve -join`
// (no extra flags; the frontend hands it the absent seat and it rebuilds
// the same shard from the shared seed) or the evicted process itself when
// started with -rejoin, which re-joins automatically whenever its session
// is lost. See the "Failure handling" section of docs/ARCHITECTURE.md.
//
// One-shot demo (three terminals):
//
//	knnnode -coordinator -addr 127.0.0.1:7100 -k 2 -seed 1
//	knnnode -join 127.0.0.1:7100 -points 100000 -l 10 -query 12345
//	knnnode -join 127.0.0.1:7100 -points 100000 -l 10 -query 12345
//
// Serving demo (three terminals plus any number of clients):
//
//	knnnode -serve -coordinator -addr 127.0.0.1:7100 -k 2 -seed 1
//	knnnode -serve -join 127.0.0.1:7100 -points 100000
//	knnnode -serve -join 127.0.0.1:7100 -points 100000
//	knnquery -connect 127.0.0.1:7100 -l 10
//
// The same, serving 8-dimensional vectors:
//
//	knnnode -serve -coordinator -addr 127.0.0.1:7100 -k 2 -seed 1
//	knnnode -serve -join 127.0.0.1:7100 -points 100000 -dim 8
//	knnnode -serve -join 127.0.0.1:7100 -points 100000 -dim 8
//	knnquery -connect 127.0.0.1:7100 -metric vector -dim 8 -l 10
//
// Or everything in one process:
//
//	knnnode -local -k 8 -points 100000 -l 10 -query 12345
//	knnnode -serve -local -k 8 -points 100000 -l 10 -queries 100
//	knnnode -serve -local -k 8 -points 100000 -dim 8 -queries 100 -batch 32
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"distknn"
	"distknn/internal/core"
	"distknn/internal/election"
	"distknn/internal/keys"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/transport/tcp"
	"distknn/internal/xrand"
)

func main() {
	var (
		coordinator = flag.Bool("coordinator", false, "run the rendezvous coordinator (with -serve: the resident frontend)")
		addr        = flag.String("addr", "127.0.0.1:7100", "coordinator listen address")
		join        = flag.String("join", "", "coordinator address to join as a node")
		local       = flag.Bool("local", false, "run coordinator and all k nodes in this process")
		serve       = flag.Bool("serve", false, "resident serving cluster instead of one-shot")
		k           = flag.Int("k", 4, "cluster size (coordinator/local mode)")
		seed        = flag.Uint64("seed", 1, "shared cluster seed")
		perNode     = flag.Int("points", 1<<16, "points generated per node")
		dim         = flag.Int("dim", 0, "vector dimension of the served shards (0 = the paper's scalar workload)")
		l           = flag.Int("l", 10, "number of nearest neighbors")
		query       = flag.Uint64("query", 0, "query point (0 = derived from seed; one-shot and -serve -local)")
		queries     = flag.Int("queries", 100, "queries the -serve -local demo issues before exiting")
		batch       = flag.Int("batch", 1, "queries per dispatched batch in the -serve -local demo")
		meshAddr    = flag.String("mesh", "127.0.0.1:0", "node mesh listen address")
		advertise   = flag.String("advertise", "", "reachable mesh address announced to peers (default: the -mesh listener's own address)")
		rejoin      = flag.Bool("rejoin", false, "with -serve -join: re-join the session automatically whenever it is lost (eviction, frontend restart)")
		window      = flag.Int("window", 0, "with -serve -coordinator: query epochs pipelined in flight at once (0 = default 8, 1 = serialized)")
		serverBatch = flag.Bool("server-batch", false, "with -serve -coordinator: coalesce concurrently arriving single queries into lockstep batch epochs")
		linger      = flag.Duration("linger", 0, "with -serve -coordinator -server-batch: max wait for a partial coalesced batch (0 = default 500µs)")
	)
	flag.Parse()

	q := *query
	if q == 0 {
		q = xrand.NewStream(*seed, 1<<40).Uint64N(points.PaperDomain)
	}
	opts := distknn.NodeOptions{Advertise: *advertise}

	switch {
	case *serve && *coordinator:
		fe, err := distknn.NewFrontendOptions(*addr, *k, *seed, distknn.FrontendOptions{
			Window:      *window,
			ServerBatch: *serverBatch,
			Linger:      *linger,
		})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("serving frontend on %s waiting for %d nodes (seed=%d)\n", fe.Addr(), *k, *seed)
		if err := fe.Serve(); err != nil {
			fatalf("%v", err)
		}
	case *serve && *join != "":
		serveSession := func() error {
			if *dim > 0 {
				fmt.Printf("resident vector node joining %s (%d %d-dim points/node)\n", *join, *perNode, *dim)
				return distknn.ServeVectorNode(*join, *meshAddr, distknn.UniformVectorShards(*seed, *perNode, *dim), opts)
			}
			fmt.Printf("resident node joining %s (%d points/node)\n", *join, *perNode)
			return distknn.ServeScalarNode(*join, *meshAddr, distknn.PaperShards(*seed, *perNode), opts)
		}
		for attempt := 0; ; attempt++ {
			err := serveSession()
			if err == nil {
				break
			}
			recoverable := errors.Is(err, distknn.ErrSessionLost)
			if !recoverable && attempt > 0 {
				// Once a session has been held and lost, a network failure
				// while re-joining usually means the frontend is restarting
				// too — keep trying. A first-attempt dial failure is still
				// fatal, so a bad -join address surfaces immediately.
				var nerr net.Error
				recoverable = errors.As(err, &nerr)
			}
			if !*rejoin || !recoverable {
				fatalf("%v", err)
			}
			// The seat is recoverable: a fresh registration lands in the
			// absent slot and the session resumes where it is.
			fmt.Printf("session lost (%v); re-joining\n", err)
			time.Sleep(500 * time.Millisecond)
		}
		fmt.Println("node shut down cleanly")
	case *serve && *local:
		serveLocalDemo(*k, *seed, *perNode, *dim, *l, *queries, *batch)
	case *coordinator:
		c, err := tcp.NewCoordinator(*addr, *k, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		defer c.Close()
		fmt.Printf("coordinator on %s waiting for %d nodes (seed=%d)\n", c.Addr(), *k, *seed)
		if err := c.Wait(); err != nil {
			fatalf("%v", err)
		}
		fmt.Println("all nodes configured; coordinator done")
	case *join != "":
		met, err := tcp.RunNode(*join, *meshAddr, nodeProgram(*seed, *perNode, *l, q, true))
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("node done: rounds=%d messages=%d bytes=%d\n", met.Rounds, met.Messages, met.Bytes)
	case *local:
		fmt.Printf("local cluster: k=%d, %d points/node, l=%d, query=%d\n", *k, *perNode, *l, q)
		metrics, errs, err := tcp.RunLocal(*k, *seed, nodeProgram(*seed, *perNode, *l, q, false))
		if err != nil {
			fatalf("%v", err)
		}
		for i, e := range errs {
			if e != nil {
				fatalf("node %d: %v", i, e)
			}
		}
		var msgs, bytes int64
		rounds := 0
		for _, m := range metrics {
			msgs += m.Messages
			bytes += m.Bytes
			if m.Rounds > rounds {
				rounds = m.Rounds
			}
		}
		fmt.Printf("cluster totals: rounds=%d messages=%d traffic=%dB\n", rounds, msgs, bytes)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// serveLocalDemo runs the whole serving deployment in one process —
// frontend, k resident nodes, and a client — answers `queries` queries over
// the standing mesh (in dispatched batches of `batch`), and prints the
// aggregate cost.
func serveLocalDemo(k int, seed uint64, perNode, dim, l, queries, batch int) {
	if queries < 1 {
		queries = 1
	}
	if batch < 1 {
		batch = 1
	}
	kind := "scalar"
	if dim > 0 {
		kind = fmt.Sprintf("%d-dim vector", dim)
	}
	fmt.Printf("local serving cluster: k=%d, %d %s points/node, l=%d, %d queries in batches of %d\n",
		k, perNode, kind, l, queries, batch)
	if dim > 0 {
		srv, err := distknn.ServeVectorLocal(k, seed, distknn.UniformVectorShards(seed, perNode, dim), distknn.NodeOptions{})
		if err != nil {
			fatalf("%v", err)
		}
		rc, err := distknn.DialVectorCluster(srv.Addr())
		if err != nil {
			srv.Close()
			fatalf("%v", err)
		}
		gen := func(i int) distknn.Vector {
			rng := xrand.NewStream(seed, 1<<40+uint64(i))
			v := make(distknn.Vector, dim)
			for j := range v {
				v[j] = rng.Float64()
			}
			return v
		}
		runDemo(srv, rc, gen, l, queries, batch, func(d uint64) string {
			return fmt.Sprintf("%.6f", keys.DecodeFloat(d))
		})
	} else {
		srv, err := distknn.ServeLocal(k, seed, distknn.PaperShards(seed, perNode), distknn.NodeOptions{})
		if err != nil {
			fatalf("%v", err)
		}
		rc, err := distknn.DialScalarCluster(srv.Addr())
		if err != nil {
			srv.Close()
			fatalf("%v", err)
		}
		gen := func(i int) distknn.Scalar {
			return distknn.Scalar(xrand.NewStream(seed, 1<<40+uint64(i)).Uint64N(points.PaperDomain))
		}
		runDemo(srv, rc, gen, l, queries, batch, func(d uint64) string {
			return fmt.Sprintf("%d", d)
		})
	}
}

// runDemo drives the -serve -local query stream for either point type.
func runDemo[P any](srv *distknn.LocalServer, rc *distknn.RemoteCluster[P], gen func(i int) P, l, queries, batch int, distStr func(uint64) string) {
	var rounds, msgs int64
	epochs := 0
	var lastBoundary distknn.Key
	for i := 0; i < queries; i += batch {
		n := batch
		if i+n > queries {
			n = queries - i
		}
		qs := make([]P, n)
		for j := range qs {
			qs[j] = gen(i + j)
		}
		res, stats, err := rc.KNNBatch(qs, l)
		if err != nil {
			fatalf("batch at query %d: %v", i, err)
		}
		rounds += int64(stats.Rounds)
		msgs += stats.Messages
		epochs++
		lastBoundary = res[len(res)-1].Boundary
	}
	rc.Close()
	if err := srv.Close(); err != nil {
		fatalf("shutdown: %v", err)
	}
	fmt.Printf("answered %d queries in %d epochs on one mesh: leader=machine %d, mean rounds/query=%.1f, mean messages/query=%.1f\n",
		queries, epochs, srv.Leader(), float64(rounds)/float64(queries), float64(msgs)/float64(queries))
	fmt.Printf("last query: boundary-dist=%s (election ran once, in the setup epoch)\n", distStr(lastBoundary.Dist))
}

// nodeProgram builds the per-node behaviour: generate the local shard from
// the shared seed, elect a leader, run Algorithm 2, classify, and (on the
// leader) print the answer.
func nodeProgram(seed uint64, perNode, l int, q uint64, verbose bool) kmachine.Program {
	return func(m kmachine.Env) error {
		rng := xrand.NewStream(seed, uint64(m.ID()))
		set := points.GenUniformScalars(rng, perNode, points.PaperDomain)
		for j := range set.IDs {
			set.IDs[j] = uint64(m.ID())*uint64(perNode) + uint64(j) + 1
		}
		leader, err := election.MinGUID(m)
		if err != nil {
			return err
		}
		res, err := core.KNN(m, core.Config{Leader: leader, L: l}, set.TopLItems(points.Scalar(q), l))
		if err != nil {
			return err
		}
		label, err := core.Classify(m, leader, res.Winners)
		if err != nil {
			return err
		}
		if verbose || m.ID() == leader {
			fmt.Printf("machine %d: leader=%d boundary-dist=%d local-winners=%d label=%g\n",
				m.ID(), leader, res.Boundary.Dist, len(res.Winners), label)
		}
		return nil
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "knnnode: "+format+"\n", args...)
	os.Exit(1)
}
