// Command knnnode runs the distributed ℓ-NN pipeline over real TCP sockets.
// Every node generates its own shard of the synthetic workload from the
// shared seed, so no data files need distributing.
//
// Without -serve it is a one-shot cluster: a coordinator process performs
// rendezvous, and k node processes (one per machine) mesh up, elect a
// leader, answer a single query with Algorithm 2, and tear down.
//
// With -serve the deployment is a resident serving cluster: the coordinator
// becomes a long-lived frontend, the nodes mesh up once, elect a leader
// once, and then answer a stream of query batches — one BSP epoch per
// batch — dispatched by the frontend to remote clients (knnquery -connect,
// or the distknn.DialScalarCluster / DialVectorCluster API). With -dim > 0
// the nodes hold d-dimensional vector shards indexed by k-d trees instead
// of the paper's scalar workload (-vmetric picks the served vector metric:
// l2, l1, linf or cosine). The frontend's epoch scheduler pipelines up to
// -window query epochs on the mesh concurrently, and with -server-batch it
// coalesces concurrently arriving single queries into lockstep batch epochs
// (flushed at 64 points or after -linger).
//
// With -anchor the nodes partition the same global dataset by a
// deterministic seeded k-center clustering instead of uniform ID blocks,
// and report tight centroid+radius summaries; a frontend started with
// -prune uses those summaries for metric-index pruned dispatch — every
// query, single-point or batched, KNN, Classify or Regress, contacts only
// the nodes whose shard ball can intersect its neighbor ball (a batch
// probes all its points in one shared wave, then each node receives just
// the sub-batch of points that admit it), with answers bit-identical to
// full scatter; -probes widens the bounding wave for overlapping clusters:
//
//	knnnode -serve -coordinator -addr 127.0.0.1:7100 -k 2 -seed 1 -prune
//	knnnode -serve -join 127.0.0.1:7100 -points 100000 -anchor
//	knnnode -serve -join 127.0.0.1:7100 -points 100000 -anchor
//	knnquery -connect 127.0.0.1:7100 -l 10
//
// Nodes spanning hosts listen on -mesh and may announce a different
// reachable address with -advertise (e.g. -mesh 0.0.0.0:7101 -advertise
// 10.0.0.5:7101); see docs/ARCHITECTURE.md for the port scheme.
//
// A serving cluster survives node churn: if a resident node dies, queries
// fail fast with a retryable "cluster degraded" error until a node takes
// the empty seat back — either a freshly started `knnnode -serve -join`
// (no extra flags; the frontend hands it the absent seat and it rebuilds
// the same shard from the shared seed) or the evicted process itself when
// started with -rejoin, which re-joins automatically whenever its session
// is lost. See the "Failure handling" section of docs/ARCHITECTURE.md.
//
// One-shot demo (three terminals):
//
//	knnnode -coordinator -addr 127.0.0.1:7100 -k 2 -seed 1
//	knnnode -join 127.0.0.1:7100 -points 100000 -l 10 -query 12345
//	knnnode -join 127.0.0.1:7100 -points 100000 -l 10 -query 12345
//
// Serving demo (three terminals plus any number of clients):
//
//	knnnode -serve -coordinator -addr 127.0.0.1:7100 -k 2 -seed 1
//	knnnode -serve -join 127.0.0.1:7100 -points 100000
//	knnnode -serve -join 127.0.0.1:7100 -points 100000
//	knnquery -connect 127.0.0.1:7100 -l 10
//
// The same, serving 8-dimensional vectors:
//
//	knnnode -serve -coordinator -addr 127.0.0.1:7100 -k 2 -seed 1
//	knnnode -serve -join 127.0.0.1:7100 -points 100000 -dim 8
//	knnnode -serve -join 127.0.0.1:7100 -points 100000 -dim 8
//	knnquery -connect 127.0.0.1:7100 -metric vector -dim 8 -l 10
//
// Or everything in one process:
//
//	knnnode -local -k 8 -points 100000 -l 10 -query 12345
//	knnnode -serve -local -k 8 -points 100000 -l 10 -queries 100
//	knnnode -serve -local -k 8 -points 100000 -dim 8 -queries 100 -batch 32
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"distknn"
	"distknn/internal/core"
	"distknn/internal/election"
	"distknn/internal/keys"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/transport/tcp"
	"distknn/internal/xrand"
)

func main() {
	var (
		coordinator = flag.Bool("coordinator", false, "run the rendezvous coordinator (with -serve: the resident frontend)")
		addr        = flag.String("addr", "127.0.0.1:7100", "coordinator listen address")
		join        = flag.String("join", "", "coordinator address to join as a node")
		local       = flag.Bool("local", false, "run coordinator and all k nodes in this process")
		serve       = flag.Bool("serve", false, "resident serving cluster instead of one-shot")
		k           = flag.Int("k", 4, "cluster size (coordinator/local mode)")
		seed        = flag.Uint64("seed", 1, "shared cluster seed")
		perNode     = flag.Int("points", 1<<16, "points generated per node")
		dim         = flag.Int("dim", 0, "vector dimension of the served shards (0 = the paper's scalar workload)")
		l           = flag.Int("l", 10, "number of nearest neighbors")
		query       = flag.Uint64("query", 0, "query point (0 = derived from seed; one-shot and -serve -local)")
		queries     = flag.Int("queries", 100, "queries the -serve -local demo issues before exiting")
		batch       = flag.Int("batch", 1, "queries per dispatched batch in the -serve -local demo")
		meshAddr    = flag.String("mesh", "127.0.0.1:0", "node mesh listen address")
		advertise   = flag.String("advertise", "", "reachable mesh address announced to peers (default: the -mesh listener's own address)")
		rejoin      = flag.Bool("rejoin", false, "with -serve -join: re-join the session automatically whenever it is lost (eviction, frontend restart)")
		window      = flag.Int("window", 0, "with -serve -coordinator: query epochs pipelined in flight at once (0 = default 8, 1 = serialized)")
		serverBatch = flag.Bool("server-batch", false, "with -serve -coordinator: coalesce concurrently arriving single queries into lockstep batch epochs")
		linger      = flag.Duration("linger", 0, "with -serve -coordinator -server-batch: max wait for a partial coalesced batch (0 = default 500µs)")
		prune       = flag.Bool("prune", false, "with -serve -coordinator: metric-index pruned dispatch — every query (single or batched, KNN/Classify/Regress) contacts only the nodes whose shard ball can hold a neighbor (answers stay bit-identical; pair with -anchor nodes for tight balls)")
		probes      = flag.Int("probes", 0, "with -serve -coordinator -prune: nearest shards each point probes for its bound (0 = default 1; more tightens the bound on overlapping clusters)")
		anchor      = flag.Bool("anchor", false, "with -serve -join or -serve -local: anchor-clustered shards (deterministic k-center partition of the same global dataset) instead of uniform ID blocks")
		vmetric     = flag.String("vmetric", "l2", "vector metric served when -dim > 0: l2|l1|linf|cosine")
		admin       = flag.String("admin", "", "with -serve: HTTP admin address — the frontend serves /metrics, /healthz, /trace/recent and /debug/pprof; a node serves its own /metrics")
	)
	flag.Parse()

	q := *query
	if q == 0 {
		q = xrand.NewStream(*seed, 1<<40).Uint64N(points.PaperDomain)
	}
	opts := distknn.NodeOptions{Advertise: *advertise}
	vectorPT := func() distknn.PointType[distknn.Vector] {
		switch *vmetric {
		case "l2":
			return distknn.VectorPoints()
		case "l1":
			return distknn.L1Points()
		case "linf":
			return distknn.LInfPoints()
		case "cosine":
			return distknn.CosinePoints()
		default:
			fatalf("unknown vector metric %q (want l2|l1|linf|cosine)", *vmetric)
			panic("unreachable")
		}
	}

	switch {
	case *serve && *coordinator:
		fopts := distknn.FrontendOptions{
			Window:      *window,
			ServerBatch: *serverBatch,
			Linger:      *linger,
		}
		if *admin != "" {
			fopts.Metrics = distknn.NewMetrics()
			fopts.Trace = distknn.NewTracer(0)
		}
		if *prune {
			// The pruner must match the point type the nodes will declare;
			// a mismatched one fails its distance computations and the
			// frontend silently serves full scatter, so answers stay right
			// either way. Cosine refuses a pruner entirely (no triangle
			// inequality) — -prune then serves plain full scatter.
			if *dim > 0 {
				fopts.Pruner = vectorPT().Pruner()
			} else {
				fopts.Pruner = distknn.ScalarPoints().Pruner()
			}
			fopts.Probes = *probes
		}
		fe, err := distknn.NewFrontendOptions(*addr, *k, *seed, fopts)
		if err != nil {
			fatalf("%v", err)
		}
		if *admin != "" {
			adm, err := distknn.ServeAdmin(*admin, distknn.AdminOptions{
				Metrics: fopts.Metrics,
				Trace:   fopts.Trace,
				Health:  fe.Health,
			})
			if err != nil {
				fatalf("admin endpoint: %v", err)
			}
			defer adm.Close()
			fmt.Printf("admin endpoint on http://%s/metrics\n", adm.Addr())
		}
		fmt.Printf("serving frontend on %s waiting for %d nodes (seed=%d)\n", fe.Addr(), *k, *seed)
		if err := fe.Serve(); err != nil {
			fatalf("%v", err)
		}
	case *serve && *join != "":
		if *admin != "" {
			opts.Metrics = distknn.NewMetrics()
			adm, err := distknn.ServeAdmin(*admin, distknn.AdminOptions{Metrics: opts.Metrics})
			if err != nil {
				fatalf("admin endpoint: %v", err)
			}
			defer adm.Close()
			fmt.Printf("admin endpoint on http://%s/metrics\n", adm.Addr())
		}
		serveSession := func() error {
			if *dim > 0 {
				shards := distknn.UniformVectorShards(*seed, *perNode, *dim)
				if *anchor {
					shards = distknn.AnchorVectorShards(*seed, *perNode, *dim)
				}
				fmt.Printf("resident vector node joining %s (%d %d-dim points/node, metric=%s, anchor=%v)\n",
					*join, *perNode, *dim, *vmetric, *anchor)
				return distknn.ServeTypedNode(vectorPT(), *join, *meshAddr, shards, opts)
			}
			shards := distknn.PaperShards(*seed, *perNode)
			if *anchor {
				shards = distknn.AnchorShards(*seed, *perNode)
			}
			fmt.Printf("resident node joining %s (%d points/node, anchor=%v)\n", *join, *perNode, *anchor)
			return distknn.ServeTypedNode(distknn.ScalarPoints(), *join, *meshAddr, shards, opts)
		}
		for attempt := 0; ; attempt++ {
			err := serveSession()
			if err == nil {
				break
			}
			recoverable := errors.Is(err, distknn.ErrSessionLost)
			if !recoverable && attempt > 0 {
				// Once a session has been held and lost, a network failure
				// while re-joining usually means the frontend is restarting
				// too — keep trying. A first-attempt dial failure is still
				// fatal, so a bad -join address surfaces immediately.
				var nerr net.Error
				recoverable = errors.As(err, &nerr)
			}
			if !*rejoin || !recoverable {
				fatalf("%v", err)
			}
			// The seat is recoverable: a fresh registration lands in the
			// absent slot and the session resumes where it is.
			fmt.Printf("session lost (%v); re-joining\n", err)
			time.Sleep(500 * time.Millisecond)
		}
		fmt.Println("node shut down cleanly")
	case *serve && *local:
		serveLocalDemo(demoConfig{
			k: *k, seed: *seed, perNode: *perNode, dim: *dim, l: *l,
			queries: *queries, batch: *batch,
			prune: *prune, anchor: *anchor, vectorPT: vectorPT,
		})
	case *coordinator:
		c, err := tcp.NewCoordinator(*addr, *k, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		defer c.Close()
		fmt.Printf("coordinator on %s waiting for %d nodes (seed=%d)\n", c.Addr(), *k, *seed)
		if err := c.Wait(); err != nil {
			fatalf("%v", err)
		}
		fmt.Println("all nodes configured; coordinator done")
	case *join != "":
		met, err := tcp.RunNode(*join, *meshAddr, nodeProgram(*seed, *perNode, *l, q, true))
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("node done: rounds=%d messages=%d bytes=%d\n", met.Rounds, met.Messages, met.Bytes)
	case *local:
		fmt.Printf("local cluster: k=%d, %d points/node, l=%d, query=%d\n", *k, *perNode, *l, q)
		metrics, errs, err := tcp.RunLocal(*k, *seed, nodeProgram(*seed, *perNode, *l, q, false))
		if err != nil {
			fatalf("%v", err)
		}
		for i, e := range errs {
			if e != nil {
				fatalf("node %d: %v", i, e)
			}
		}
		var msgs, bytes int64
		rounds := 0
		for _, m := range metrics {
			msgs += m.Messages
			bytes += m.Bytes
			if m.Rounds > rounds {
				rounds = m.Rounds
			}
		}
		fmt.Printf("cluster totals: rounds=%d messages=%d traffic=%dB\n", rounds, msgs, bytes)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// demoConfig carries the -serve -local knobs.
type demoConfig struct {
	k               int
	seed            uint64
	perNode, dim, l int
	queries, batch  int
	prune, anchor   bool
	vectorPT        func() distknn.PointType[distknn.Vector]
}

// serveLocalDemo runs the whole serving deployment in one process —
// frontend, k resident nodes, and a client — answers `queries` queries over
// the standing mesh (in dispatched batches of `batch`), and prints the
// aggregate cost. With -prune (and batch 1) single-point queries travel
// through the metric-index pruned dispatch; -anchor partitions the same
// global dataset by the deterministic k-center clustering so the shard
// balls are tight.
func serveLocalDemo(cfg demoConfig) {
	if cfg.queries < 1 {
		cfg.queries = 1
	}
	if cfg.batch < 1 {
		cfg.batch = 1
	}
	kind := "scalar"
	if cfg.dim > 0 {
		kind = fmt.Sprintf("%d-dim vector", cfg.dim)
	}
	fmt.Printf("local serving cluster: k=%d, %d %s points/node, l=%d, %d queries in batches of %d (prune=%v anchor=%v)\n",
		cfg.k, cfg.perNode, kind, cfg.l, cfg.queries, cfg.batch, cfg.prune, cfg.anchor)
	if cfg.dim > 0 {
		pt := cfg.vectorPT()
		shards := distknn.UniformVectorShards(cfg.seed, cfg.perNode, cfg.dim)
		if cfg.anchor {
			shards = distknn.AnchorVectorShards(cfg.seed, cfg.perNode, cfg.dim)
		}
		fopts := distknn.FrontendOptions{}
		if cfg.prune {
			fopts.Pruner = pt.Pruner()
		}
		srv, err := distknn.ServeTypedLocalOptions(pt, cfg.k, cfg.seed, shards, distknn.NodeOptions{}, fopts)
		if err != nil {
			fatalf("%v", err)
		}
		rc, err := distknn.DialTypedCluster(pt, srv.Addr())
		if err != nil {
			srv.Close()
			fatalf("%v", err)
		}
		gen := func(i int) distknn.Vector {
			rng := xrand.NewStream(cfg.seed, 1<<40+uint64(i))
			v := make(distknn.Vector, cfg.dim)
			for j := range v {
				v[j] = rng.Float64()
			}
			return v
		}
		runDemo(srv, rc, gen, cfg.l, cfg.queries, cfg.batch, func(d uint64) string {
			return fmt.Sprintf("%.6f", keys.DecodeFloat(d))
		})
	} else {
		shards := distknn.PaperShards(cfg.seed, cfg.perNode)
		if cfg.anchor {
			shards = distknn.AnchorShards(cfg.seed, cfg.perNode)
		}
		fopts := distknn.FrontendOptions{}
		if cfg.prune {
			fopts.Pruner = distknn.ScalarPoints().Pruner()
		}
		srv, err := distknn.ServeTypedLocalOptions(distknn.ScalarPoints(), cfg.k, cfg.seed, shards, distknn.NodeOptions{}, fopts)
		if err != nil {
			fatalf("%v", err)
		}
		rc, err := distknn.DialTypedCluster(distknn.ScalarPoints(), srv.Addr())
		if err != nil {
			srv.Close()
			fatalf("%v", err)
		}
		gen := func(i int) distknn.Scalar {
			return distknn.Scalar(xrand.NewStream(cfg.seed, 1<<40+uint64(i)).Uint64N(points.PaperDomain))
		}
		runDemo(srv, rc, gen, cfg.l, cfg.queries, cfg.batch, func(d uint64) string {
			return fmt.Sprintf("%d", d)
		})
	}
}

// runDemo drives the -serve -local query stream for either point type.
func runDemo[P any](srv *distknn.LocalServer, rc *distknn.RemoteCluster[P], gen func(i int) P, l, queries, batch int, distStr func(uint64) string) {
	var rounds, msgs int64
	epochs := 0
	var lastBoundary distknn.Key
	for i := 0; i < queries; i += batch {
		n := batch
		if i+n > queries {
			n = queries - i
		}
		qs := make([]P, n)
		for j := range qs {
			qs[j] = gen(i + j)
		}
		res, stats, err := rc.KNNBatch(qs, l)
		if err != nil {
			fatalf("batch at query %d: %v", i, err)
		}
		rounds += int64(stats.Rounds)
		msgs += stats.Messages
		epochs++
		lastBoundary = res[len(res)-1].Boundary
	}
	rc.Close()
	if err := srv.Close(); err != nil {
		fatalf("shutdown: %v", err)
	}
	fmt.Printf("answered %d queries in %d epochs on one mesh: leader=machine %d, mean rounds/query=%.1f, mean messages/query=%.1f\n",
		queries, epochs, srv.Leader(), float64(rounds)/float64(queries), float64(msgs)/float64(queries))
	fmt.Printf("last query: boundary-dist=%s (election ran once, in the setup epoch)\n", distStr(lastBoundary.Dist))
}

// nodeProgram builds the per-node behaviour: generate the local shard from
// the shared seed, elect a leader, run Algorithm 2, classify, and (on the
// leader) print the answer.
func nodeProgram(seed uint64, perNode, l int, q uint64, verbose bool) kmachine.Program {
	return func(m kmachine.Env) error {
		rng := xrand.NewStream(seed, uint64(m.ID()))
		set := points.GenUniformScalars(rng, perNode, points.PaperDomain)
		for j := range set.IDs {
			set.IDs[j] = uint64(m.ID())*uint64(perNode) + uint64(j) + 1
		}
		leader, err := election.MinGUID(m)
		if err != nil {
			return err
		}
		res, err := core.KNN(m, core.Config{Leader: leader, L: l}, set.TopLItems(points.Scalar(q), l))
		if err != nil {
			return err
		}
		label, err := core.Classify(m, leader, res.Winners)
		if err != nil {
			return err
		}
		if verbose || m.ID() == leader {
			fmt.Printf("machine %d: leader=%d boundary-dist=%d local-winners=%d label=%g\n",
				m.ID(), leader, res.Boundary.Dist, len(res.Winners), label)
		}
		return nil
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "knnnode: "+format+"\n", args...)
	os.Exit(1)
}
