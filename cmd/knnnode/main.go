// Command knnnode runs the distributed ℓ-NN pipeline over real TCP sockets:
// a coordinator process performs rendezvous, and k node processes (one per
// machine) mesh up, elect a leader, and answer a query with Algorithm 2.
// Every node generates its own shard of the paper's synthetic workload from
// the shared seed, so no data files need distributing.
//
// Single-machine demo (three terminals):
//
//	knnnode -coordinator -addr 127.0.0.1:7100 -k 2 -seed 1
//	knnnode -join 127.0.0.1:7100 -points 100000 -l 10 -query 12345
//	knnnode -join 127.0.0.1:7100 -points 100000 -l 10 -query 12345
//
// Or everything in one process:
//
//	knnnode -local -k 8 -points 100000 -l 10 -query 12345
package main

import (
	"flag"
	"fmt"
	"os"

	"distknn/internal/core"
	"distknn/internal/election"
	"distknn/internal/kmachine"
	"distknn/internal/points"
	"distknn/internal/transport/tcp"
	"distknn/internal/xrand"
)

func main() {
	var (
		coordinator = flag.Bool("coordinator", false, "run the rendezvous coordinator")
		addr        = flag.String("addr", "127.0.0.1:7100", "coordinator listen address")
		join        = flag.String("join", "", "coordinator address to join as a node")
		local       = flag.Bool("local", false, "run coordinator and all k nodes in this process")
		k           = flag.Int("k", 4, "cluster size (coordinator/local mode)")
		seed        = flag.Uint64("seed", 1, "shared cluster seed")
		perNode     = flag.Int("points", 1<<16, "points generated per node")
		l           = flag.Int("l", 10, "number of nearest neighbors")
		query       = flag.Uint64("query", 0, "query point (0 = derived from seed)")
		meshAddr    = flag.String("mesh", "127.0.0.1:0", "node mesh listen address")
	)
	flag.Parse()

	q := *query
	if q == 0 {
		q = xrand.NewStream(*seed, 1<<40).Uint64N(points.PaperDomain)
	}

	switch {
	case *coordinator:
		c, err := tcp.NewCoordinator(*addr, *k, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		defer c.Close()
		fmt.Printf("coordinator on %s waiting for %d nodes (seed=%d)\n", c.Addr(), *k, *seed)
		if err := c.Wait(); err != nil {
			fatalf("%v", err)
		}
		fmt.Println("all nodes configured; coordinator done")
	case *join != "":
		met, err := tcp.RunNode(*join, *meshAddr, nodeProgram(*seed, *perNode, *l, q, true))
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("node done: rounds=%d messages=%d bytes=%d\n", met.Rounds, met.Messages, met.Bytes)
	case *local:
		fmt.Printf("local cluster: k=%d, %d points/node, l=%d, query=%d\n", *k, *perNode, *l, q)
		metrics, errs, err := tcp.RunLocal(*k, *seed, nodeProgram(*seed, *perNode, *l, q, false))
		if err != nil {
			fatalf("%v", err)
		}
		for i, e := range errs {
			if e != nil {
				fatalf("node %d: %v", i, e)
			}
		}
		var msgs, bytes int64
		rounds := 0
		for _, m := range metrics {
			msgs += m.Messages
			bytes += m.Bytes
			if m.Rounds > rounds {
				rounds = m.Rounds
			}
		}
		fmt.Printf("cluster totals: rounds=%d messages=%d traffic=%dB\n", rounds, msgs, bytes)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// nodeProgram builds the per-node behaviour: generate the local shard from
// the shared seed, elect a leader, run Algorithm 2, classify, and (on the
// leader) print the answer.
func nodeProgram(seed uint64, perNode, l int, q uint64, verbose bool) kmachine.Program {
	return func(m kmachine.Env) error {
		rng := xrand.NewStream(seed, uint64(m.ID()))
		set := points.GenUniformScalars(rng, perNode, points.PaperDomain)
		for j := range set.IDs {
			set.IDs[j] = uint64(m.ID())*uint64(perNode) + uint64(j) + 1
		}
		leader, err := election.MinGUID(m)
		if err != nil {
			return err
		}
		res, err := core.KNN(m, core.Config{Leader: leader, L: l}, set.TopLItems(points.Scalar(q), l))
		if err != nil {
			return err
		}
		label, err := core.Classify(m, leader, res.Winners)
		if err != nil {
			return err
		}
		if verbose || m.ID() == leader {
			fmt.Printf("machine %d: leader=%d boundary-dist=%d local-winners=%d label=%g\n",
				m.ID(), leader, res.Boundary.Dist, len(res.Winners), label)
		}
		return nil
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "knnnode: "+format+"\n", args...)
	os.Exit(1)
}
