// Command knnlint is the repository's static-invariant gate: a vet tool
// (usable via `go vet -vettool`) bundling the knnlint analyzer suite —
// detsource, kindswitch, poolown, lockio and fpsum — which together keep
// the cluster's determinism, wire-dispatch and data-plane contracts
// enforceable at compile time. See docs/ARCHITECTURE.md, "Static
// invariants".
//
// Usage:
//
//	go build -o bin/knnlint ./cmd/knnlint
//	go vet -vettool=bin/knnlint ./...
//
// or locally via scripts/lint.sh, which runs the identical gate CI runs.
package main

import (
	"distknn/internal/analysis/registry"
	"distknn/internal/analysis/unitchecker"
)

func main() {
	unitchecker.Main(registry.All()...)
}
