// Command knnbench regenerates the paper's evaluation — every experiment of
// the per-experiment index (E1–E9), including Figure 2 — plus the serving
// experiments this repository adds: the persistent-runtime throughput
// comparison (E10), the resident-TCP-mesh comparisons over real loopback
// sockets (E11/E11b/E12), and the frontend epoch scheduler under
// concurrent clients (E13). Results print as aligned tables, CSV, or one
// JSON document for machine consumption.
//
// Examples:
//
//	knnbench -list
//	knnbench -experiment figure2
//	knnbench -experiment figure2 -ks 2,8,32,128 -ls 8,128,2048 -reps 30
//	knnbench -experiment all -quick
//	knnbench -experiment sampling -csv > sampling.csv
//	knnbench -experiment all -quick -json > BENCH_quick.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"distknn/internal/bench"
	"distknn/internal/kmachine"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id, comma-separated ids (see -list), or 'all'")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		seed       = flag.Uint64("seed", 1, "experiment seed")
		reps       = flag.Int("reps", 0, "repetitions per configuration (0 = default)")
		perMachine = flag.Int("points", 0, "points per machine (0 = default 2^14; paper used 2^22)")
		bandwidth  = flag.Int("bandwidth", 0, "link bandwidth in bytes/round (0 = 64, <0 = unlimited)")
		ks         = flag.String("ks", "", "comma-separated machine counts to sweep")
		ls         = flag.String("ls", "", "comma-separated l values to sweep")
		latency    = flag.Duration("latency", 50*time.Microsecond, "modeled per-round link latency")
		quick      = flag.Bool("quick", false, "tiny sweep sizes (smoke test)")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut    = flag.Bool("json", false, "emit one JSON document instead of tables")
	)
	flag.Parse()

	if *csv && *jsonOut {
		fatalf("-csv and -json are mutually exclusive")
	}
	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-10s %s\n", e.ID, e.Description)
		}
		return
	}

	params := bench.Params{
		Seed:       *seed,
		Reps:       *reps,
		PerMachine: *perMachine,
		Bandwidth:  *bandwidth,
		Model:      kmachine.CostModel{RoundLatency: *latency},
		Quick:      *quick,
	}
	var err error
	if params.Ks, err = parseInts(*ks); err != nil {
		fatalf("bad -ks: %v", err)
	}
	if params.Ls, err = parseInts(*ls); err != nil {
		fatalf("bad -ls: %v", err)
	}

	var todo []bench.Experiment
	if *experiment == "all" {
		todo = bench.Experiments
	} else {
		for _, id := range strings.Split(*experiment, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fatalf("unknown experiment %q (use -list)", id)
			}
			todo = append(todo, e)
		}
	}

	var doc jsonDoc
	doc.Seed = params.Seed
	doc.Quick = params.Quick
	doc.Meta = runMeta()
	for _, e := range todo {
		start := time.Now()
		tables, err := e.Run(params)
		if err != nil {
			fatalf("%s: %v", e.ID, err)
		}
		elapsed := time.Since(start)
		if *jsonOut {
			doc.Experiments = append(doc.Experiments, jsonExperiment{
				ID:          e.ID,
				Description: e.Description,
				ElapsedMs:   float64(elapsed.Microseconds()) / 1e3,
				Tables:      tables,
			})
			continue
		}
		for _, t := range tables {
			if *csv {
				if err := t.WriteCSV(os.Stdout); err != nil {
					fatalf("csv: %v", err)
				}
			} else {
				t.Render(os.Stdout)
			}
		}
		if !*csv {
			fmt.Printf("(%s completed in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatalf("json: %v", err)
		}
	}
}

// jsonDoc is the machine-readable output of -json: everything the text
// tables carry, keyed so future PRs can diff perf trajectories
// (BENCH_*.json).
type jsonDoc struct {
	Seed        uint64           `json:"seed"`
	Quick       bool             `json:"quick"`
	Meta        jsonMeta         `json:"meta"`
	Experiments []jsonExperiment `json:"experiments"`
}

// jsonMeta records the environment a -json run was measured in, so perf
// trajectories diffed across BENCH_*.json files compare like with like.
type jsonMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	Gomaxprocs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Commit     string `json:"commit,omitempty"`
}

// runMeta gathers the run environment. The commit comes from the build's
// embedded VCS stamp when the binary was built inside a checkout, falling
// back to the CI-provided GITHUB_SHA.
func runMeta() jsonMeta {
	m := jsonMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Gomaxprocs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if rev != "" {
			m.Commit = rev + dirty
		}
	}
	if m.Commit == "" {
		m.Commit = os.Getenv("GITHUB_SHA")
	}
	return m
}

type jsonExperiment struct {
	ID          string         `json:"id"`
	Description string         `json:"description"`
	ElapsedMs   float64        `json:"elapsed_ms"`
	Tables      []*bench.Table `json:"tables"`
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d must be >= 1", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "knnbench: "+format+"\n", args...)
	os.Exit(1)
}
