// Command knnquery builds a synthetic distributed dataset and answers one
// ℓ-NN query with any of the implemented algorithms, printing the neighbors
// and the distributed cost. With -compare it runs every algorithm on the
// same query and tabulates their costs side by side. With -serve it keeps
// the cluster resident and fires a stream of queries from -concurrency
// goroutines, reporting sustained QPS and latency percentiles — the
// serving workload the persistent runtime exists for.
//
// With -connect it skips building anything and becomes a remote client of a
// TCP serving cluster (started with knnnode -serve): one query by default,
// or the same -serve throughput driver aimed across the network.
//
// Examples:
//
//	knnquery -n 100000 -k 16 -l 10
//	knnquery -n 100000 -k 16 -l 10 -algo simple
//	knnquery -n 65536 -k 32 -l 256 -compare
//	knnquery -metric vector -dim 8 -n 10000 -l 5
//	knnquery -n 100000 -k 16 -l 10 -serve -concurrency 8 -queries 5000
//	knnquery -connect 127.0.0.1:7100 -l 10
//	knnquery -connect 127.0.0.1:7100 -l 10 -serve -queries 1000
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"distknn"
	"distknn/internal/bench"
	"distknn/internal/keys"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

var algoByName = map[string]distknn.Algorithm{
	"alg2":        distknn.Alg2,
	"direct":      distknn.Direct,
	"simple":      distknn.Simple,
	"saukas-song": distknn.SaukasSong,
	"binsearch":   distknn.BinSearch,
}

func main() {
	var (
		n         = flag.Int("n", 1<<16, "total number of points")
		k         = flag.Int("k", 8, "number of machines")
		l         = flag.Int("l", 10, "number of nearest neighbors")
		seed      = flag.Uint64("seed", 1, "dataset and protocol seed")
		algoName  = flag.String("algo", "alg2", "algorithm: alg2|direct|simple|saukas-song|binsearch")
		metric    = flag.String("metric", "scalar", "point type: scalar|vector")
		dim       = flag.Int("dim", 4, "vector dimension (for -metric vector)")
		bandwidth = flag.Int("bandwidth", 0, "link bandwidth in bytes/round (0 = 64)")
		compare   = flag.Bool("compare", false, "run every algorithm and compare costs")
		show      = flag.Int("show", 10, "how many neighbors to print")
		serve     = flag.Bool("serve", false, "throughput mode: stream queries at the resident cluster and report QPS")
		workers   = flag.Int("concurrency", runtime.GOMAXPROCS(0), "client goroutines in -serve mode")
		queries   = flag.Int("queries", 2000, "total queries in -serve mode")
		connect   = flag.String("connect", "", "frontend address of a remote TCP serving cluster (see knnnode -serve); query it instead of building a local one")
	)
	flag.Parse()

	if *compare && *serve {
		fatalf("-compare and -serve are mutually exclusive")
	}
	algo, ok := algoByName[*algoName]
	if !ok {
		fatalf("unknown algorithm %q", *algoName)
	}
	rng := xrand.New(*seed)

	if *connect != "" {
		if *compare {
			fatalf("-compare needs a local cluster; it cannot be combined with -connect")
		}
		if *metric != "scalar" {
			fatalf("remote serving clusters hold scalar shards; -metric %s is not served yet", *metric)
		}
		rc, err := distknn.DialCluster(*connect)
		if err != nil {
			fatalf("%v", err)
		}
		defer rc.Close()
		if *serve {
			runServe(rc, func(rng *rand.Rand) distknn.Scalar {
				return distknn.Scalar(rng.Uint64N(points.PaperDomain))
			}, *l, *queries, *workers, *seed)
			return
		}
		q := distknn.Scalar(rng.Uint64N(points.PaperDomain))
		fmt.Printf("remote cluster at %s; query=%d l=%d\n\n", *connect, uint64(q), *l)
		items, stats, err := rc.KNN(q, *l)
		if err != nil {
			fatalf("%v", err)
		}
		printResult(items, stats, *show, func(key keys.Key) string {
			return fmt.Sprintf("%d", key.Dist)
		})
		return
	}

	switch *metric {
	case "scalar":
		values := make([]uint64, *n)
		labels := make([]float64, *n)
		for i := range values {
			values[i] = rng.Uint64N(points.PaperDomain)
			labels[i] = float64(i % 4)
		}
		q := distknn.Scalar(rng.Uint64N(points.PaperDomain))
		fmt.Printf("dataset: %d scalar points on %d machines; query=%d l=%d\n\n", *n, *k, uint64(q), *l)
		if *compare {
			compareAll(values, labels, q, *k, *l, *seed, *bandwidth)
			return
		}
		c, err := distknn.NewScalarCluster(values, labels, distknn.Options{
			Machines: *k, Seed: *seed, Algorithm: algo, BandwidthBytes: *bandwidth,
		})
		if err != nil {
			fatalf("%v", err)
		}
		defer c.Close()
		if *serve {
			runServe(c, func(rng *rand.Rand) distknn.Scalar {
				return distknn.Scalar(rng.Uint64N(points.PaperDomain))
			}, *l, *queries, *workers, *seed)
			return
		}
		items, stats, err := c.KNN(q, *l)
		if err != nil {
			fatalf("%v", err)
		}
		printResult(items, stats, *show, func(key keys.Key) string {
			return fmt.Sprintf("%d", key.Dist)
		})
	case "vector":
		vecs := make([]distknn.Vector, *n)
		labels := make([]float64, *n)
		for i := range vecs {
			v := make(distknn.Vector, *dim)
			for j := range v {
				v[j] = rng.Float64()
			}
			vecs[i] = v
			labels[i] = float64(i % 4)
		}
		q := make(distknn.Vector, *dim)
		for j := range q {
			q[j] = rng.Float64()
		}
		fmt.Printf("dataset: %d %d-dim points on %d machines; l=%d\n\n", *n, *dim, *k, *l)
		c, err := distknn.NewVectorCluster(vecs, labels, distknn.Options{
			Machines: *k, Seed: *seed, Algorithm: algo, BandwidthBytes: *bandwidth,
		})
		if err != nil {
			fatalf("%v", err)
		}
		defer c.Close()
		if *serve {
			dims := *dim
			runServe(c, func(rng *rand.Rand) distknn.Vector {
				v := make(distknn.Vector, dims)
				for j := range v {
					v[j] = rng.Float64()
				}
				return v
			}, *l, *queries, *workers, *seed)
			return
		}
		items, stats, err := c.KNN(q, *l)
		if err != nil {
			fatalf("%v", err)
		}
		printResult(items, stats, *show, func(key keys.Key) string {
			return fmt.Sprintf("%.6f", keys.DecodeFloat(key.Dist))
		})
	default:
		fatalf("unknown metric %q", *metric)
	}
}

func printResult(items []distknn.Item, stats *distknn.QueryStats, show int, distStr func(keys.Key) string) {
	fmt.Printf("leader=machine %d  rounds=%d  messages=%d  traffic=%dB",
		stats.Leader, stats.Rounds, stats.Messages, stats.Bytes)
	if stats.Survivors > 0 {
		fmt.Printf("  prune-survivors=%d", stats.Survivors)
	}
	if stats.FellBack {
		fmt.Printf("  (las-vegas fallback)")
	}
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "rank\tdistance\tpoint-id\tlabel")
	for i, it := range items {
		if i >= show {
			fmt.Fprintf(w, "...\t(%d more)\t\t\n", len(items)-show)
			break
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%g\n", i+1, distStr(it.Key), it.Key.ID, it.Label)
	}
	w.Flush()
}

func compareAll(values []uint64, labels []float64, q distknn.Scalar, k, l int, seed uint64, bandwidth int) {
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\trounds\tmessages\ttraffic(B)\titerations\tboundary-dist")
	for _, name := range []string{"alg2", "direct", "simple", "saukas-song", "binsearch"} {
		c, err := distknn.NewScalarCluster(values, labels, distknn.Options{
			Machines: k, Seed: seed, Algorithm: algoByName[name], BandwidthBytes: bandwidth,
		})
		if err != nil {
			fatalf("%v", err)
		}
		_, stats, err := c.KNN(q, l)
		c.Close()
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\n",
			name, stats.Rounds, stats.Messages, stats.Bytes, stats.Iterations, stats.Boundary.Dist)
	}
	w.Flush()
	fmt.Println("\n(all algorithms returned the same boundary; they are exact)")
}

// servable is what the throughput driver needs from either deployment: the
// in-process *distknn.Cluster or the remote *distknn.RemoteCluster.
type servable[P any] interface {
	bench.Queryable[P]
	Leader() int
}

// runServe streams `total` queries at the resident cluster from `workers`
// goroutines — via the same bench.Serve driver the throughput experiment
// uses — and reports sustained throughput, latency percentiles and mean
// distributed cost. Every query is exact. In-process, the persistent
// runtime gives each in-flight query its own simulation world, so workers
// never contend on the model's links; against a remote cluster the frontend
// serializes query epochs, so added workers measure pipelining of the
// client path only.
func runServe[P any](c servable[P], gen func(*rand.Rand) P, l, total, workers int, seed uint64) {
	// Per-index query streams keep the workload deterministic however the
	// work queue interleaves across workers; bench.Serve runs its own
	// un-measured warm-up query first.
	query := func(i int) P {
		return gen(xrand.NewStream(seed, 1<<52+uint64(i)))
	}
	res := bench.Serve(c, query, l, total, workers)
	if res.FirstErr != nil && res.OK() == 0 {
		fatalf("serve: %v", res.FirstErr)
	}

	ok := res.OK()
	fmt.Printf("serve: %d queries, %d workers, leader=machine %d\n", total, workers, c.Leader())
	fmt.Printf("  wall        %v\n", res.Wall.Round(time.Millisecond))
	if ok > 0 {
		fmt.Printf("  throughput  %.0f queries/s\n", res.QPS())
		fmt.Printf("  latency     p50=%v  p95=%v  p99=%v  max=%v\n",
			res.Percentile(0.50).Round(time.Microsecond), res.Percentile(0.95).Round(time.Microsecond),
			res.Percentile(0.99).Round(time.Microsecond), res.Latencies[ok-1].Round(time.Microsecond))
		fmt.Printf("  per query   rounds=%.1f  messages=%.1f  traffic=%.0fB (election: 0, paid once at startup)\n",
			float64(res.Rounds)/float64(ok), float64(res.Messages)/float64(ok),
			float64(res.Bytes)/float64(ok))
	}
	if res.Failed > 0 {
		fmt.Printf("  FAILED      %d queries (excluded from the numbers above; first error: %v)\n",
			res.Failed, res.FirstErr)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "knnquery: "+format+"\n", args...)
	os.Exit(1)
}
