// Command knnquery builds a synthetic distributed dataset and answers one
// ℓ-NN query with any of the implemented algorithms, printing the neighbors
// and the distributed cost. With -compare it runs every algorithm on the
// same query and tabulates their costs side by side. With -serve it keeps
// the cluster resident and fires a stream of queries from -concurrency
// goroutines, reporting sustained QPS and latency percentiles — the
// serving workload the persistent runtime exists for. With -batch n > 1
// the stream travels as KNNBatch batches of n instead of single queries,
// amortizing per-query overhead (and, against a TCP cluster, frames,
// syscalls and BSP epochs).
//
// With -connect it skips building anything and becomes a remote client of a
// TCP serving cluster (started with knnnode -serve): one query by default,
// the -serve throughput driver, or -batch batched dispatch — for scalar
// clusters and, with -metric vector -dim d, vector clusters (-metric also
// accepts l1, linf and cosine to match a cluster served with knnnode
// -vmetric).
//
// Examples:
//
//	knnquery -n 100000 -k 16 -l 10
//	knnquery -n 100000 -k 16 -l 10 -algo simple
//	knnquery -n 65536 -k 32 -l 256 -compare
//	knnquery -metric vector -dim 8 -n 10000 -l 5
//	knnquery -n 100000 -k 16 -l 10 -serve -concurrency 8 -queries 5000
//	knnquery -n 100000 -k 16 -l 10 -queries 5000 -batch 64
//	knnquery -connect 127.0.0.1:7100 -l 10
//	knnquery -connect 127.0.0.1:7100 -l 10 -serve -queries 1000
//	knnquery -connect 127.0.0.1:7100 -l 10 -queries 1000 -batch 32
//	knnquery -connect 127.0.0.1:7100 -metric vector -dim 8 -l 10
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"distknn"
	"distknn/internal/bench"
	"distknn/internal/keys"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

var algoByName = map[string]distknn.Algorithm{
	"alg2":        distknn.Alg2,
	"direct":      distknn.Direct,
	"simple":      distknn.Simple,
	"saukas-song": distknn.SaukasSong,
	"binsearch":   distknn.BinSearch,
}

func main() {
	var (
		n         = flag.Int("n", 1<<16, "total number of points")
		k         = flag.Int("k", 8, "number of machines")
		l         = flag.Int("l", 10, "number of nearest neighbors")
		seed      = flag.Uint64("seed", 1, "dataset and protocol seed")
		algoName  = flag.String("algo", "alg2", "algorithm: alg2|direct|simple|saukas-song|binsearch")
		metric    = flag.String("metric", "scalar", "point type: scalar|vector; with -connect also l1|linf|cosine")
		dim       = flag.Int("dim", 4, "vector dimension (for -metric vector)")
		bandwidth = flag.Int("bandwidth", 0, "link bandwidth in bytes/round (0 = 64)")
		compare   = flag.Bool("compare", false, "run every algorithm and compare costs")
		show      = flag.Int("show", 10, "how many neighbors to print")
		serve     = flag.Bool("serve", false, "throughput mode: stream queries at the resident cluster and report QPS")
		workers   = flag.Int("concurrency", runtime.GOMAXPROCS(0), "client goroutines in -serve mode")
		queries   = flag.Int("queries", 2000, "total queries in -serve and -batch modes")
		batchSize = flag.Int("batch", 1, "queries per KNNBatch dispatch (>1 switches to serial batched mode)")
		connect   = flag.String("connect", "", "frontend address of a remote TCP serving cluster (see knnnode -serve); query it instead of building a local one")
		timeout   = flag.Duration("timeout", 0, "per-query deadline against a remote cluster (0 = none); churn-degraded queries are retried for up to 500ms either way")
		admin     = flag.String("admin", "", "with -connect: serve the client's runtime metrics on this HTTP address (/metrics, /debug/pprof)")
	)
	flag.Parse()

	if *compare && (*serve || *batchSize > 1) {
		fatalf("-compare is mutually exclusive with -serve and -batch")
	}
	if *serve && *batchSize > 1 {
		fatalf("-serve streams single queries; use -batch without -serve for batched dispatch")
	}
	algo, ok := algoByName[*algoName]
	if !ok {
		fatalf("unknown algorithm %q", *algoName)
	}
	rng := xrand.New(*seed)

	genScalar := func(rng *rand.Rand) distknn.Scalar {
		return distknn.Scalar(rng.Uint64N(points.PaperDomain))
	}
	dims := *dim
	genVector := func(rng *rand.Rand) distknn.Vector {
		v := make(distknn.Vector, dims)
		for j := range v {
			v[j] = rng.Float64()
		}
		return v
	}
	scalarDist := func(key keys.Key) string { return fmt.Sprintf("%d", key.Dist) }
	vectorDist := func(key keys.Key) string { return fmt.Sprintf("%.6f", keys.DecodeFloat(key.Dist)) }

	if *connect != "" {
		if *compare {
			fatalf("-compare needs a local cluster; it cannot be combined with -connect")
		}
		copts := distknn.ClientOptions{QueryTimeout: *timeout}
		if *admin != "" {
			reg := distknn.NewMetrics()
			copts.Metrics = reg
			adm, err := distknn.ServeAdmin(*admin, distknn.AdminOptions{Metrics: reg})
			if err != nil {
				fatalf("admin endpoint: %v", err)
			}
			defer adm.Close()
			fmt.Printf("client admin endpoint on http://%s/metrics\n", adm.Addr())
		}
		switch *metric {
		case "scalar":
			rc, err := distknn.DialTypedClusterOptions(distknn.ScalarPoints(), *connect, copts)
			if err != nil {
				fatalf("%v", err)
			}
			defer rc.Close()
			fmt.Printf("remote scalar cluster at %s; l=%d\n\n", *connect, *l)
			drive(rc, genScalar, scalarDist, *l, *queries, *workers, *batchSize, *serve, *show, *seed, rng)
		case "vector", "l1", "linf", "cosine":
			pt := distknn.VectorPoints()
			switch *metric {
			case "l1":
				pt = distknn.L1Points()
			case "linf":
				pt = distknn.LInfPoints()
			case "cosine":
				pt = distknn.CosinePoints()
			}
			rc, err := distknn.DialTypedClusterOptions(pt, *connect, copts)
			if err != nil {
				fatalf("%v", err)
			}
			defer rc.Close()
			fmt.Printf("remote %s cluster at %s; dim=%d l=%d\n\n", *metric, *connect, dims, *l)
			drive(rc, genVector, vectorDist, *l, *queries, *workers, *batchSize, *serve, *show, *seed, rng)
		default:
			fatalf("unknown metric %q", *metric)
		}
		return
	}

	switch *metric {
	case "scalar":
		values := make([]uint64, *n)
		labels := make([]float64, *n)
		for i := range values {
			values[i] = rng.Uint64N(points.PaperDomain)
			labels[i] = float64(i % 4)
		}
		q := distknn.Scalar(rng.Uint64N(points.PaperDomain))
		fmt.Printf("dataset: %d scalar points on %d machines; query=%d l=%d\n\n", *n, *k, uint64(q), *l)
		if *compare {
			compareAll(values, labels, q, *k, *l, *seed, *bandwidth)
			return
		}
		c, err := distknn.NewScalarCluster(values, labels, distknn.Options{
			Machines: *k, Seed: *seed, Algorithm: algo, BandwidthBytes: *bandwidth,
		})
		if err != nil {
			fatalf("%v", err)
		}
		defer c.Close()
		drive(c, genScalar, scalarDist, *l, *queries, *workers, *batchSize, *serve, *show, *seed, rng)
	case "vector":
		vecs := make([]distknn.Vector, *n)
		labels := make([]float64, *n)
		for i := range vecs {
			vecs[i] = genVector(rng)
			labels[i] = float64(i % 4)
		}
		fmt.Printf("dataset: %d %d-dim points on %d machines; l=%d\n\n", *n, dims, *k, *l)
		c, err := distknn.NewVectorCluster(vecs, labels, distknn.Options{
			Machines: *k, Seed: *seed, Algorithm: algo, BandwidthBytes: *bandwidth,
		})
		if err != nil {
			fatalf("%v", err)
		}
		defer c.Close()
		drive(c, genVector, vectorDist, *l, *queries, *workers, *batchSize, *serve, *show, *seed, rng)
	default:
		fatalf("unknown metric %q", *metric)
	}
}

// queryCluster is the full driver surface knnquery needs; both the
// in-process *distknn.Cluster and the remote *distknn.RemoteCluster
// satisfy it.
type queryCluster[P any] interface {
	bench.Queryable[P]
	KNNBatch(qs []P, l int) ([]distknn.BatchResult, *distknn.QueryStats, error)
	Leader() int
}

// drive routes one cluster handle into the selected mode: a single printed
// query, the -serve concurrency driver, or -batch batched dispatch.
func drive[P any](c queryCluster[P], gen func(*rand.Rand) P, distStr func(keys.Key) string,
	l, queries, workers, batch int, serve bool, show int, seed uint64, rng *rand.Rand) {
	switch {
	case serve:
		runServe(c, gen, l, queries, workers, seed)
	case batch > 1:
		runBatch(c, gen, l, queries, batch, seed)
	default:
		q := gen(rng)
		items, stats, err := c.KNN(q, l)
		if err != nil {
			fatalf("%v", err)
		}
		printResult(items, stats, show, distStr)
	}
}

func printResult(items []distknn.Item, stats *distknn.QueryStats, show int, distStr func(keys.Key) string) {
	fmt.Printf("leader=machine %d  rounds=%d  messages=%d  traffic=%dB",
		stats.Leader, stats.Rounds, stats.Messages, stats.Bytes)
	if stats.Contacts > 0 {
		fmt.Printf("  contacted-nodes=%d", stats.Contacts)
	}
	if stats.Survivors > 0 {
		fmt.Printf("  prune-survivors=%d", stats.Survivors)
	}
	if stats.FellBack {
		fmt.Printf("  (las-vegas fallback)")
	}
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "rank\tdistance\tpoint-id\tlabel")
	for i, it := range items {
		if i >= show {
			fmt.Fprintf(w, "...\t(%d more)\t\t\n", len(items)-show)
			break
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%g\n", i+1, distStr(it.Key), it.Key.ID, it.Label)
	}
	w.Flush()
}

func compareAll(values []uint64, labels []float64, q distknn.Scalar, k, l int, seed uint64, bandwidth int) {
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\trounds\tmessages\ttraffic(B)\titerations\tboundary-dist")
	for _, name := range []string{"alg2", "direct", "simple", "saukas-song", "binsearch"} {
		c, err := distknn.NewScalarCluster(values, labels, distknn.Options{
			Machines: k, Seed: seed, Algorithm: algoByName[name], BandwidthBytes: bandwidth,
		})
		if err != nil {
			fatalf("%v", err)
		}
		_, stats, err := c.KNN(q, l)
		c.Close()
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\n",
			name, stats.Rounds, stats.Messages, stats.Bytes, stats.Iterations, stats.Boundary.Dist)
	}
	w.Flush()
	fmt.Println("\n(all algorithms returned the same boundary; they are exact)")
}

// runServe streams `total` queries at the resident cluster from `workers`
// goroutines — via the same bench.Serve driver the throughput experiment
// uses — and reports sustained throughput, latency percentiles and mean
// distributed cost. Every query is exact. In-process, the persistent
// runtime gives each in-flight query its own simulation world, so workers
// never contend on the model's links; against a remote cluster the frontend
// serializes query epochs, so added workers measure pipelining of the
// client path only.
func runServe[P any](c queryCluster[P], gen func(*rand.Rand) P, l, total, workers int, seed uint64) {
	// Per-index query streams keep the workload deterministic however the
	// work queue interleaves across workers; bench.Serve runs its own
	// un-measured warm-up query first.
	query := func(i int) P {
		return gen(xrand.NewStream(seed, 1<<52+uint64(i)))
	}
	res := bench.Serve(c, query, l, total, workers)
	if res.FirstErr != nil && res.OK() == 0 {
		fatalf("serve: %v", res.FirstErr)
	}

	ok := res.OK()
	fmt.Printf("serve: %d queries, %d workers, leader=machine %d\n", total, workers, c.Leader())
	fmt.Printf("  wall        %v\n", res.Wall.Round(time.Millisecond))
	if ok > 0 {
		fmt.Printf("  throughput  %.0f queries/s\n", res.QPS())
		fmt.Printf("  latency     p50=%v  p95=%v  p99=%v  max=%v\n",
			res.Percentile(0.50).Round(time.Microsecond), res.Percentile(0.95).Round(time.Microsecond),
			res.Percentile(0.99).Round(time.Microsecond), res.Latencies[ok-1].Round(time.Microsecond))
		fmt.Printf("  per query   rounds=%.1f  messages=%.1f  traffic=%.0fB (election: 0, paid once at startup)\n",
			float64(res.Rounds)/float64(ok), float64(res.Messages)/float64(ok),
			float64(res.Bytes)/float64(ok))
		if res.Contacts > 0 {
			fmt.Printf("  pruned      contacted-nodes/query=%.2f\n", float64(res.Contacts)/float64(ok))
		}
	}
	if res.Failed > 0 {
		fmt.Printf("  FAILED      %d queries (excluded from the numbers above; first error: %v)\n",
			res.Failed, res.FirstErr)
	}
}

// runBatch issues `total` queries serially in KNNBatch batches of `batch`
// and reports the amortized per-query throughput and cost. Against a TCP
// cluster every batch is one dispatched BSP epoch, so this is the client
// view of the wire-native batching E11b measures.
func runBatch[P any](c queryCluster[P], gen func(*rand.Rand) P, l, total, batch int, seed uint64) {
	if total < 1 {
		total = 1
	}
	query := func(i int) P {
		return gen(xrand.NewStream(seed, 1<<52+uint64(i)))
	}
	// Warm up (and learn the leader) outside the clock, like bench.Serve.
	if _, _, err := c.KNN(query(0), l); err != nil {
		fatalf("batch warm-up: %v", err)
	}
	var rounds, msgs, traffic, contacts int64
	epochs := 0
	start := time.Now()
	for i := 0; i < total; i += batch {
		n := batch
		if i+n > total {
			n = total - i
		}
		qs := make([]P, n)
		for j := range qs {
			qs[j] = query(i + j)
		}
		_, stats, err := c.KNNBatch(qs, l)
		if err != nil {
			fatalf("batch at query %d: %v", i, err)
		}
		rounds += int64(stats.Rounds)
		msgs += stats.Messages
		traffic += stats.Bytes
		contacts += stats.Contacts
		epochs++
	}
	wall := time.Since(start)
	fmt.Printf("batch: %d queries in %d batches of ≤%d, leader=machine %d\n", total, epochs, batch, c.Leader())
	fmt.Printf("  wall        %v\n", wall.Round(time.Millisecond))
	fmt.Printf("  throughput  %.0f queries/s\n", float64(total)/wall.Seconds())
	fmt.Printf("  per query   rounds=%.1f  messages=%.1f  traffic=%.0fB\n",
		float64(rounds)/float64(total), float64(msgs)/float64(total), float64(traffic)/float64(total))
	if contacts > 0 {
		fmt.Printf("  pruned      contacted-nodes/query=%.2f\n", float64(contacts)/float64(total))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "knnquery: "+format+"\n", args...)
	os.Exit(1)
}
