package distknn

import (
	"errors"
	"math"
	"sort"
	"testing"

	"distknn/internal/core"
	"distknn/internal/points"
	"distknn/internal/xrand"
)

func scalarFixture(t *testing.T, n int, opts Options) (*Cluster[Scalar], []uint64, []float64) {
	t.Helper()
	rng := xrand.New(1234)
	values := make([]uint64, n)
	labels := make([]float64, n)
	for i := range values {
		values[i] = rng.Uint64N(points.PaperDomain)
		labels[i] = float64(i % 3)
	}
	c, err := NewScalarCluster(values, labels, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close) // idempotent; tests may also Close explicitly
	return c, values, labels
}

// bruteScalar computes the oracle answer on the raw slices.
func bruteScalar(values []uint64, labels []float64, q uint64, l int) []Item {
	type pair struct {
		d  uint64
		id uint64
		lb float64
	}
	ps := make([]pair, len(values))
	for i, v := range values {
		d := v - q
		if q > v {
			d = q - v
		}
		ps[i] = pair{d, uint64(i) + 1, labels[i]}
	}
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].d != ps[b].d {
			return ps[a].d < ps[b].d
		}
		return ps[a].id < ps[b].id
	})
	out := make([]Item, l)
	for i := 0; i < l; i++ {
		out[i] = Item{Key: Key{Dist: ps[i].d, ID: ps[i].id}, Label: ps[i].lb}
	}
	return out
}

func TestKNNMatchesOracleAcrossAlgorithms(t *testing.T) {
	for _, algo := range []Algorithm{Alg2, Direct, Simple, SaukasSong, BinSearch} {
		t.Run(algo.String(), func(t *testing.T) {
			c, values, labels := scalarFixture(t, 300, Options{Machines: 6, Seed: 7, Algorithm: algo})
			q := uint64(999999)
			got, stats, err := c.KNN(Scalar(q), 20)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteScalar(values, labels, q, 20)
			if len(got) != 20 {
				t.Fatalf("got %d items", len(got))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("rank %d: got %+v, want %+v", i, got[i], want[i])
				}
			}
			if stats.Rounds == 0 || stats.Messages == 0 {
				t.Errorf("stats not populated: %+v", stats)
			}
			if stats.Boundary != want[19].Key {
				t.Errorf("boundary %v, want %v", stats.Boundary, want[19].Key)
			}
		})
	}
}

func TestClusterDeterministicReplay(t *testing.T) {
	run := func() ([]Item, *QueryStats) {
		c, _, _ := scalarFixture(t, 200, Options{Machines: 4, Seed: 42})
		items, stats, err := c.KNN(Scalar(5), 10)
		if err != nil {
			t.Fatal(err)
		}
		return items, stats
	}
	a, sa := run()
	b, sb := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results differ at %d", i)
		}
	}
	if sa.Rounds != sb.Rounds || sa.Messages != sb.Messages {
		t.Errorf("stats differ: %+v vs %+v", sa, sb)
	}
}

func TestSuccessiveQueriesUseFreshRandomness(t *testing.T) {
	c, values, labels := scalarFixture(t, 300, Options{Machines: 4, Seed: 3})
	for rep := 0; rep < 5; rep++ {
		q := uint64(rep * 1000003)
		got, _, err := c.KNN(Scalar(q), 7)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteScalar(values, labels, q, 7)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rep %d rank %d mismatch", rep, i)
			}
		}
	}
}

func TestClassifyAndRegress(t *testing.T) {
	// Labels: values below 2^31 get label 1, others label 2. A query at 0
	// must classify 1; regression near 1.
	values := make([]uint64, 200)
	labels := make([]float64, 200)
	rng := xrand.New(5)
	for i := range values {
		values[i] = rng.Uint64N(points.PaperDomain)
		if values[i] < 1<<31 {
			labels[i] = 1
		} else {
			labels[i] = 2
		}
	}
	c, err := NewScalarCluster(values, labels, Options{Machines: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	label, stats, err := c.Classify(Scalar(0), 15)
	if err != nil {
		t.Fatal(err)
	}
	if label != 1 {
		t.Errorf("Classify = %g, want 1", label)
	}
	if stats.Rounds == 0 {
		t.Errorf("classify stats empty")
	}
	mean, _, err := c.Regress(Scalar(0), 15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-1) > 1e-9 {
		t.Errorf("Regress = %g, want 1", mean)
	}
}

func TestVectorCluster(t *testing.T) {
	rng := xrand.New(11)
	vecs := make([]Vector, 150)
	labels := make([]float64, 150)
	for i := range vecs {
		vecs[i] = Vector{rng.Float64(), rng.Float64()}
		labels[i] = float64(i % 2)
	}
	c, err := NewVectorCluster(vecs, labels, Options{Machines: 3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, _, err := c.KNN(Vector{0.5, 0.5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against a points.Set oracle.
	set, _ := points.NewSet(vecs, labels, points.L2, 1)
	want := set.BruteKNN(Vector{0.5, 0.5}, 5)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rank %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestSublinearElectionOption(t *testing.T) {
	c, values, labels := scalarFixture(t, 200, Options{Machines: 8, Seed: 17, SublinearElection: true})
	got, stats, err := c.KNN(Scalar(77), 9)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteScalar(values, labels, 77, 9)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rank %d mismatch", i)
		}
	}
	if stats.Leader < 0 || stats.Leader >= 8 {
		t.Errorf("leader %d out of range", stats.Leader)
	}
}

func TestMonteCarloOptionSurfacesFailure(t *testing.T) {
	// Hopeless constants force the prune to fail; Monte Carlo mode must
	// surface ErrMonteCarloFailure to the caller.
	c, _, _ := scalarFixture(t, 2000, Options{
		Machines: 8, Seed: 19, MonteCarlo: true, SampleFactor: 1, CutFactor: 1,
	})
	sawFailure := false
	for rep := 0; rep < 6; rep++ {
		_, _, err := c.KNN(Scalar(uint64(rep)), 200)
		if err != nil {
			if !errors.Is(err, core.ErrMonteCarloFailure) {
				t.Fatalf("unexpected error type: %v", err)
			}
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Errorf("rank-1 prune never failed across 6 Monte Carlo queries")
	}
}

func TestInvalidArguments(t *testing.T) {
	c, _, _ := scalarFixture(t, 50, Options{Machines: 4, Seed: 21})
	if _, _, err := c.KNN(Scalar(1), 0); err == nil {
		t.Errorf("l=0 must fail")
	}
	if _, _, err := c.KNN(Scalar(1), 51); err == nil {
		t.Errorf("l>n must fail")
	}
	if _, _, err := c.Classify(Scalar(1), 0); err == nil {
		t.Errorf("classify l=0 must fail")
	}
	if _, _, err := c.Regress(Scalar(1), 999); err == nil {
		t.Errorf("regress l>n must fail")
	}
	empty, err := NewScalarCluster(nil, nil, Options{Machines: 2})
	if err != nil {
		t.Errorf("empty cluster should build (queries will fail): %v", err)
	} else {
		empty.Close()
	}
}

func TestClusterAccessors(t *testing.T) {
	c, _, _ := scalarFixture(t, 100, Options{Machines: 7, Seed: 23})
	if c.Len() != 100 || c.Machines() != 7 {
		t.Errorf("Len=%d Machines=%d", c.Len(), c.Machines())
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		Alg2: "alg2", Direct: "direct", Simple: "simple",
		SaukasSong: "saukas-song", BinSearch: "binsearch", Algorithm(9): "algorithm(9)",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
}

func TestDefaultOptions(t *testing.T) {
	c, err := NewScalarCluster([]uint64{1, 2, 3, 4, 5, 6, 7, 8}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Machines() != 4 {
		t.Errorf("default machines = %d, want 4", c.Machines())
	}
	got, _, err := c.KNN(Scalar(0), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Key.Dist != 1 {
		t.Errorf("KNN on defaults: %+v", got)
	}
}

func TestVectorClusterTreeMatchesScan(t *testing.T) {
	// The kd-tree-backed local search must give results identical to the
	// generic scan path on the same data and seed.
	rng := xrand.New(61)
	vecs := make([]Vector, 400)
	for i := range vecs {
		vecs[i] = Vector{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	treeC, err := NewVectorCluster(vecs, nil, Options{Machines: 5, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	defer treeC.Close()
	scanC, err := NewCluster(vecs, nil, points.L2, Options{Machines: 5, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	defer scanC.Close()
	for rep := 0; rep < 3; rep++ {
		q := Vector{rng.Float64(), rng.Float64(), rng.Float64()}
		a, _, err := treeC.KNN(q, 11)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := scanC.KNN(q, 11)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rep %d rank %d: tree %+v != scan %+v", rep, i, a[i], b[i])
			}
		}
	}
}

func TestVectorClusterRejectsMixedDims(t *testing.T) {
	if _, err := NewVectorCluster([]Vector{{1, 2}, {1}}, nil, Options{Machines: 1}); err == nil {
		t.Errorf("mixed-dimension vectors must be rejected at construction")
	}
}

func TestKNNOneShotMatchesKNN(t *testing.T) {
	c, values, labels := scalarFixture(t, 300, Options{Machines: 6, Seed: 73})
	defer c.Close()
	q := uint64(123456)
	const l = 9
	want := bruteScalar(values, labels, q, l)
	got, stats, err := c.KNNOneShot(Scalar(q), l)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rank %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if stats.Rounds == 0 || stats.Messages == 0 {
		t.Errorf("one-shot stats not populated: %+v", stats)
	}
	if _, _, err := c.KNNOneShot(Scalar(q), 0); err == nil {
		t.Errorf("l=0 must fail")
	}
}

func TestRandomIDsOption(t *testing.T) {
	c, values, labels := scalarFixture(t, 300, Options{Machines: 4, Seed: 71, RandomIDs: true})
	got, _, err := c.KNN(Scalar(123), 9)
	if err != nil {
		t.Fatal(err)
	}
	// IDs differ from the sequential oracle, but the distances (and hence
	// the neighbor multiset) must match exactly.
	want := bruteScalar(values, labels, 123, 9)
	for i := range got {
		if got[i].Key.Dist != want[i].Key.Dist {
			t.Fatalf("rank %d: dist %d, want %d", i, got[i].Key.Dist, want[i].Key.Dist)
		}
		if got[i].Key.ID == 0 {
			t.Fatalf("random ID must be >= 1")
		}
	}
}
